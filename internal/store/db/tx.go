package db

import (
	"fmt"
	"sync/atomic"
)

// Tx is a transaction. Reads see a consistent view (committed state plus
// the transaction's own writes); writes take exclusive row locks held
// until commit or abort (strict two-phase locking). Lock conflicts fail
// fast with ErrConflict rather than blocking — in the crash-only design,
// callers treat a conflict like any other retryable failure.
//
// Reads take only db.mu's shared side (or none at all on a row-cache
// hit) and return the live, immutable row without copying; writes and
// Commit take the exclusive side. A Tx is owned by one goroutine — its
// overlay is not synchronized — but the store may invalidate or abort it
// concurrently (crash, microreboot), which the atomic state word makes
// safe.
//
// Tx objects are recycled through a per-DB sync.Pool. The state word
// packs the transaction id (a monotonically increasing generation
// counter) with the done bit: state = id<<1 | done. Anyone holding a
// stale (tx, id) pair — the microreboot machinery aborts transactions it
// registered earlier — finishes it with a single compare-and-swap
// against the exact generation, so an abort that races the owner's
// commit plus a pool reuse can only fail closed (ErrTxDone), never
// touch the next borrower's state.
type Tx struct {
	db *DB
	// state = id<<1 | doneBit. The id doubles as a generation counter:
	// it changes on every pool reuse, so a CAS against a remembered id
	// detects use-after-recycle.
	state atomic.Uint64
	// writes buffers mutations: applied to tables (and the WAL) only at
	// commit. Key order is preserved for deterministic WAL contents.
	writes []walRecord
	// locked remembers the row locks held: table → row ids. Mutated only
	// under db.mu's write side.
	locked map[string]map[int64]struct{}
	// overlay holds the tx's own uncommitted writes for reads:
	// table → key → row (nil row means deleted). Owner-goroutine only.
	overlay map[string]map[int64]Row
}

// Begin starts a transaction. It takes no database lock: transaction ids
// come from an atomic counter and registration goes to a sharded table,
// so starting the read-only transactions that dominate the workload never
// queues behind a commit. The Tx object itself comes from a per-DB pool;
// in steady state Begin allocates nothing.
func (d *DB) Begin() (*Tx, error) {
	if d.crashed.Load() {
		return nil, ErrCrashed
	}
	// locked and overlay maps are created lazily on first write, so
	// read-only transactions (the bulk of the workload) allocate neither.
	tx, _ := d.txPool.Get().(*Tx)
	if tx == nil {
		tx = &Tx{db: d}
	}
	id := d.nextTx.Add(1)
	tx.state.Store(id << 1)
	d.txs.add(tx)
	// A crash may have landed between the check above and the add; make
	// sure no live Tx escapes a crashed database. The object is left to
	// the GC: the crash path may still be invalidating it.
	if d.crashed.Load() {
		tx.invalidate()
		d.txs.remove(id)
		return nil, ErrCrashed
	}
	return tx, nil
}

// Recycle returns a finished transaction to the per-DB pool. Only the
// goroutine that owns the Tx may call it, and only after its own Commit
// or Abort returned nil: a transaction finished by anyone else (crash
// invalidation, AbortAll, a scoped microreboot) must be left to the
// garbage collector instead, because the finisher may still be touching
// the object. Recycle refuses (and leaks) a transaction that is not
// done.
func (t *Tx) Recycle() {
	if t.state.Load()&1 == 0 {
		return
	}
	clear(t.writes)
	t.writes = t.writes[:0]
	t.locked = nil
	t.overlay = nil
	t.db.txPool.Put(t)
}

// invalidate marks the transaction unusable when the database crashes
// under it.
func (t *Tx) invalidate() {
	for {
		s := t.state.Load()
		if s&1 == 1 || t.state.CompareAndSwap(s, s|1) {
			return
		}
	}
}

// ID returns the transaction's identifier (its current generation).
func (t *Tx) ID() uint64 { return t.state.Load() >> 1 }

func (t *Tx) table(name string) (*table, error) {
	tbl, ok := t.db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	return tbl, nil
}

// lock acquires the exclusive lock for (table, key) or fails fast.
// Caller holds db.mu's write side.
func (t *Tx) lock(tbl *table, tableName string, key int64) error {
	id := t.ID()
	owner, held := tbl.locks[key]
	if held && owner != id {
		t.db.conflicts.Add(1)
		return fmt.Errorf("%w: row %d of %s held by tx %d", ErrConflict, key, tableName, owner)
	}
	tbl.locks[key] = id
	if t.locked == nil {
		t.locked = map[string]map[int64]struct{}{}
	}
	set := t.locked[tableName]
	if set == nil {
		set = map[int64]struct{}{}
		t.locked[tableName] = set
	}
	set[key] = struct{}{}
	return nil
}

func (t *Tx) overlayGet(tableName string, key int64) (Row, bool) {
	if m, ok := t.overlay[tableName]; ok {
		if r, ok := m[key]; ok {
			return r, true
		}
	}
	return nil, false
}

func (t *Tx) overlaySet(tableName string, key int64, r Row) {
	if t.overlay == nil {
		t.overlay = map[string]map[int64]Row{}
	}
	m := t.overlay[tableName]
	if m == nil {
		m = map[int64]Row{}
		t.overlay[tableName] = m
	}
	m[key] = r
}

func (t *Tx) guard() error {
	if t.state.Load()&1 == 1 {
		return ErrTxDone
	}
	if t.db.crashed.Load() {
		return ErrCrashed
	}
	return nil
}

// Insert adds a new row with an auto-assigned primary key and returns the
// key. The row is validated against the schema.
func (t *Tx) Insert(tableName string, r Row) (int64, error) {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	if err := t.guard(); err != nil {
		return 0, err
	}
	tbl, err := t.table(tableName)
	if err != nil {
		return 0, err
	}
	if err := tbl.validate(r); err != nil {
		return 0, err
	}
	key := tbl.nextKey
	tbl.nextKey++
	if err := t.lock(tbl, tableName, key); err != nil {
		return 0, err
	}
	row := r.clone()
	t.writes = append(t.writes, walRecord{Kind: recInsert, Table: tableName, Key: key, Row: row})
	t.overlaySet(tableName, key, row)
	return key, nil
}

// InsertWithKey adds a row under a caller-chosen primary key (used for
// dataset loading and the IDManager component, which generates
// application-specific primary keys).
func (t *Tx) InsertWithKey(tableName string, key int64, r Row) error {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	if err := t.guard(); err != nil {
		return err
	}
	tbl, err := t.table(tableName)
	if err != nil {
		return err
	}
	if err := tbl.validate(r); err != nil {
		return err
	}
	if _, exists := tbl.rows[key]; exists {
		return fmt.Errorf("%w: %d in %s", ErrDupKey, key, tableName)
	}
	if r, ok := t.overlayGet(tableName, key); ok && r != nil {
		return fmt.Errorf("%w: %d in %s (uncommitted)", ErrDupKey, key, tableName)
	}
	if err := t.lock(tbl, tableName, key); err != nil {
		return err
	}
	if key >= tbl.nextKey {
		tbl.nextKey = key + 1
	}
	row := r.clone()
	t.writes = append(t.writes, walRecord{Kind: recInsert, Table: tableName, Key: key, Row: row})
	t.overlaySet(tableName, key, row)
	return nil
}

// Get returns the row with the given key, honoring the transaction's own
// uncommitted writes. The returned row is the live, immutable table row
// (or the tx's overlay row) — callers must Clone before mutating.
//
// The hot path is lock-free: a row-cache hit returns without touching
// db.mu at all. On a miss the committed row is read and cached under the
// shared lock.
func (t *Tx) Get(tableName string, key int64) (Row, error) {
	if t.state.Load()&1 == 1 {
		return nil, ErrTxDone
	}
	if t.overlay != nil {
		if r, ok := t.overlayGet(tableName, key); ok {
			if r == nil {
				return nil, fmt.Errorf("%w: %d in %s", ErrNoRow, key, tableName)
			}
			return r, nil
		}
	}
	d := t.db
	if r, ok := d.cache.get(tableName, key); ok && !d.crashed.Load() {
		return r, nil
	}
	d.mu.RLock()
	if d.crashed.Load() {
		d.mu.RUnlock()
		return nil, ErrCrashed
	}
	tbl, ok := d.tables[tableName]
	if !ok {
		d.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	r, ok := tbl.rows[key]
	if ok {
		// Fill while still holding the shared lock: no commit can be
		// mid-apply, so the cached value cannot be stale.
		d.cache.put(tableName, key, r)
	}
	d.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d in %s", ErrNoRow, key, tableName)
	}
	return r, nil
}

// GetForUpdate returns the row like Get, but first acquires the row's
// exclusive lock (fail-fast with ErrConflict) — the store's
// SELECT ... FOR UPDATE. Read-modify-write cycles (the id-sequence
// counter being the canonical one) must use it for the read: a plain Get
// takes no lock, so two transactions could both read the same counter
// value if one commits between the other's read and write — a lost
// update that surfaces as duplicate primary keys downstream.
func (t *Tx) GetForUpdate(tableName string, key int64) (Row, error) {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	if err := t.guard(); err != nil {
		return nil, err
	}
	tbl, err := t.table(tableName)
	if err != nil {
		return nil, err
	}
	if ov, ok := t.overlayGet(tableName, key); ok {
		if ov == nil {
			return nil, fmt.Errorf("%w: %d in %s", ErrNoRow, key, tableName)
		}
		if err := t.lock(tbl, tableName, key); err != nil {
			return nil, err
		}
		return ov, nil
	}
	r, ok := tbl.rows[key]
	if !ok {
		return nil, fmt.Errorf("%w: %d in %s", ErrNoRow, key, tableName)
	}
	if err := t.lock(tbl, tableName, key); err != nil {
		return nil, err
	}
	return r, nil
}

// Update overwrites the row with the given key. The row is validated.
func (t *Tx) Update(tableName string, key int64, r Row) error {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	if err := t.guard(); err != nil {
		return err
	}
	tbl, err := t.table(tableName)
	if err != nil {
		return err
	}
	if err := tbl.validate(r); err != nil {
		return err
	}
	if ov, ok := t.overlayGet(tableName, key); ok && ov == nil {
		return fmt.Errorf("%w: %d in %s", ErrNoRow, key, tableName)
	}
	if _, ok := t.overlayGet(tableName, key); !ok {
		if _, exists := tbl.rows[key]; !exists {
			return fmt.Errorf("%w: %d in %s", ErrNoRow, key, tableName)
		}
	}
	if err := t.lock(tbl, tableName, key); err != nil {
		return err
	}
	row := r.clone()
	t.writes = append(t.writes, walRecord{Kind: recUpdate, Table: tableName, Key: key, Row: row})
	t.overlaySet(tableName, key, row)
	return nil
}

// Delete removes the row with the given key.
func (t *Tx) Delete(tableName string, key int64) error {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	if err := t.guard(); err != nil {
		return err
	}
	tbl, err := t.table(tableName)
	if err != nil {
		return err
	}
	if ov, ok := t.overlayGet(tableName, key); ok && ov == nil {
		return fmt.Errorf("%w: %d in %s", ErrNoRow, key, tableName)
	}
	if _, ok := t.overlayGet(tableName, key); !ok {
		if _, exists := tbl.rows[key]; !exists {
			return fmt.Errorf("%w: %d in %s", ErrNoRow, key, tableName)
		}
	}
	if err := t.lock(tbl, tableName, key); err != nil {
		return err
	}
	t.writes = append(t.writes, walRecord{Kind: recDelete, Table: tableName, Key: key})
	t.overlaySet(tableName, key, nil)
	return nil
}

// Lookup returns the keys of committed rows whose indexed column equals
// value. The column must be declared in Schema.Indexes. Uncommitted writes
// of this transaction are merged in.
func (t *Tx) Lookup(tableName, column string, value any) ([]int64, error) {
	t.db.mu.RLock()
	if err := t.guard(); err != nil {
		t.db.mu.RUnlock()
		return nil, err
	}
	tbl, err := t.table(tableName)
	if err != nil {
		t.db.mu.RUnlock()
		return nil, err
	}
	idx, ok := tbl.indexes[column]
	if !ok {
		t.db.mu.RUnlock()
		return nil, fmt.Errorf("db: no index on %s.%s", tableName, column)
	}
	seen := map[int64]bool{}
	var keys []int64
	for id := range idx[value] {
		seen[id] = true
		keys = append(keys, id)
	}
	t.db.mu.RUnlock()
	// Merge this transaction's overlay (owner-only state; no lock needed).
	for id, row := range t.overlay[tableName] {
		if row == nil {
			if seen[id] {
				// deleted by this tx: remove
				for i, k := range keys {
					if k == id {
						keys = append(keys[:i], keys[i+1:]...)
						break
					}
				}
			}
			continue
		}
		if row[column] == value && !seen[id] {
			keys = append(keys, id)
		}
	}
	sort64(keys)
	return keys, nil
}

// Scan calls fn for every committed row (merged with the transaction's
// overlay) in ascending key order. Rows passed to fn are the live,
// immutable table rows — fn may retain them but must not mutate.
func (t *Tx) Scan(tableName string, fn func(key int64, r Row) bool) error {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	if err := t.guard(); err != nil {
		return err
	}
	tbl, err := t.table(tableName)
	if err != nil {
		return err
	}
	keys := make([]int64, 0, len(tbl.rows))
	for k := range tbl.rows {
		keys = append(keys, k)
	}
	for k, row := range t.overlay[tableName] {
		if row != nil {
			if _, exists := tbl.rows[k]; !exists {
				keys = append(keys, k)
			}
		}
	}
	sort64(keys)
	for _, k := range keys {
		row := tbl.rows[k]
		if ov, ok := t.overlayGet(tableName, k); ok {
			row = ov
		}
		if row == nil {
			continue
		}
		if !fn(k, row) {
			return nil
		}
	}
	return nil
}

func sort64(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Commit atomically applies the transaction's writes, appends them to the
// WAL, and releases all locks. When the WAL mirrors to a sink, the sink
// flush happens via group commit: this committer may ride another
// commit's flush, and it waits for that flush only after releasing the
// database lock, so concurrent commits coalesce instead of serializing
// one flush each.
//
// Read-only transactions take a fast path: no exclusive lock, no WAL
// commit mark — committing a transaction with no writes is a pure
// bookkeeping operation.
func (t *Tx) Commit() error {
	d := t.db
	if len(t.writes) == 0 {
		s := t.state.Load()
		if s&1 == 1 || !t.state.CompareAndSwap(s, s|1) {
			return ErrTxDone
		}
		d.txs.remove(s >> 1)
		d.commits.Add(1)
		return nil
	}
	d.mu.Lock()
	s := t.state.Load()
	if s&1 == 1 || !t.state.CompareAndSwap(s, s|1) {
		d.mu.Unlock()
		return ErrTxDone
	}
	id := s >> 1
	d.txs.remove(id)
	// Durability first: the WAL records the commit before tables mutate.
	// The in-memory log (what Recover replays) is written synchronously
	// here; only the sink flush is deferred to the group.
	wait := d.wal.appendCommit(id, t.writes)
	for _, w := range t.writes {
		tbl := d.tables[w.Table]
		switch w.Kind {
		case recInsert, recUpdate:
			if old, ok := tbl.rows[w.Key]; ok {
				tbl.indexRemove(w.Key, old)
			}
			tbl.rows[w.Key] = w.Row.clone()
			tbl.indexAdd(w.Key, w.Row)
		case recDelete:
			if old, ok := tbl.rows[w.Key]; ok {
				tbl.indexRemove(w.Key, old)
				delete(tbl.rows, w.Key)
			}
		}
		// Invalidate before the commit returns (still under the exclusive
		// lock) so no reader can observe a pre-commit cached value after
		// this commit is acknowledged.
		d.cache.invalidate(w.Table, w.Key)
	}
	t.releaseLocks()
	d.commits.Add(1)
	d.mu.Unlock()
	wait.Wait()
	return nil
}

// Abort discards the transaction's writes and releases all locks. The
// container calls this automatically for transactions open at µRB time:
// "If an EJB is involved in any transactions at the time of a microreboot,
// they are all automatically aborted by the container and rolled back by
// the database."
func (t *Tx) Abort() error {
	d := t.db
	d.mu.Lock()
	defer d.mu.Unlock()
	s := t.state.Load()
	if s&1 == 1 || !t.state.CompareAndSwap(s, s|1) {
		return ErrTxDone
	}
	d.txs.remove(s >> 1)
	t.releaseLocks()
	d.aborts.Add(1)
	return nil
}

// AbortIf aborts the transaction only if it still carries the given id.
// Holders of a remembered (tx, id) pair — the microreboot machinery,
// which registers transactions and rolls them back later — must use this
// instead of Abort: because Tx objects are pooled, the pointer may by
// now belong to a different transaction entirely, and the
// exact-generation compare-and-swap makes such a stale abort fail closed
// with ErrTxDone instead of killing the new owner's transaction.
func (t *Tx) AbortIf(id uint64) error {
	d := t.db
	d.mu.Lock()
	defer d.mu.Unlock()
	if !t.state.CompareAndSwap(id<<1, id<<1|1) {
		return ErrTxDone
	}
	d.txs.remove(id)
	t.releaseLocks()
	d.aborts.Add(1)
	return nil
}

// Done reports whether the transaction has committed or aborted.
func (t *Tx) Done() bool {
	return t.state.Load()&1 == 1
}

// releaseLocks drops all row locks. Caller holds db.mu's write side.
func (t *Tx) releaseLocks() {
	id := t.ID()
	for tableName, keys := range t.locked {
		tbl := t.db.tables[tableName]
		if tbl == nil {
			continue
		}
		for k := range keys {
			if tbl.locks[k] == id {
				delete(tbl.locks, k)
			}
		}
	}
	t.locked = nil
}

// AbortAll aborts every open transaction whose id is accepted by keep
// returning false. Passing nil aborts all open transactions. It returns
// the number collected. The microreboot machinery uses this to roll back
// transactions belonging to rebooted components. Each victim is aborted
// with its collected id, so one that finishes (and is pool-recycled)
// between collection and abort is skipped rather than re-aborted under
// its new owner.
func (d *DB) AbortAll(keep func(txID uint64) bool) int {
	victims := d.txs.collect(keep)
	for _, v := range victims {
		_ = v.tx.AbortIf(v.id) // already-finished txs are fine
	}
	return len(victims)
}
