package db

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRecycledTxFailsClosed is the use-after-release regression test: a
// (tx, id) pair remembered before the Tx went back to the pool must fail
// closed when finished later, even after the pooled object has been
// re-begun by a new owner — the stale abort must not touch the new
// owner's transaction.
func TestRecycledTxFailsClosed(t *testing.T) {
	d := newUserDB(t)

	tx := mustBegin(t, d)
	staleID := tx.ID()
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	tx.Recycle()

	// Drain the pool until the recycled object comes back out (the pool
	// may hand back a fresh object; keep beginning until pointers match
	// or give up after a few tries — pools are not FIFO).
	var reborn *Tx
	for i := 0; i < 64 && reborn == nil; i++ {
		n := mustBegin(t, d)
		if n == tx {
			reborn = n
		} else {
			if err := n.Commit(); err != nil {
				t.Fatalf("Commit drain: %v", err)
			}
			n.Recycle()
		}
	}
	if reborn == nil {
		t.Skip("pool never returned the recycled Tx (GC or pool internals); nothing to assert")
	}
	if reborn.ID() == staleID {
		t.Fatalf("re-begun tx reused id %d; generation must advance", staleID)
	}

	// A stale abort against the old generation must fail closed...
	if err := reborn.AbortIf(staleID); !errors.Is(err, ErrTxDone) {
		t.Fatalf("AbortIf(stale id) = %v, want ErrTxDone", err)
	}
	// ...and leave the new owner fully usable.
	key, err := reborn.Insert("users", Row{"name": "bob", "rating": int64(1), "region": int64(2)})
	if err != nil {
		t.Fatalf("Insert on new owner after stale abort: %v", err)
	}
	if err := reborn.Commit(); err != nil {
		t.Fatalf("Commit on new owner after stale abort: %v", err)
	}
	check := mustBegin(t, d)
	if _, err := check.Get("users", key); err != nil {
		t.Fatalf("Get after commit: %v", err)
	}
	if err := check.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

// TestRecycleRefusesUnfinishedTx: Recycle on a live transaction must be
// a no-op (the object leaks to the GC rather than entering the pool in
// a usable state).
func TestRecycleRefusesUnfinishedTx(t *testing.T) {
	d := newUserDB(t)
	tx := mustBegin(t, d)
	tx.Recycle() // must refuse: tx is not done
	if tx.Done() {
		t.Fatal("Recycle marked a live tx done")
	}
	if _, err := tx.Insert("users", Row{"name": "carol", "rating": int64(0), "region": int64(1)}); err != nil {
		t.Fatalf("Insert after refused Recycle: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit after refused Recycle: %v", err)
	}
}

// TestGetForUpdateBlocksLostUpdate: two transactions doing a
// read-modify-write on the same row through GetForUpdate must conflict,
// never both succeed on the same starting value.
func TestGetForUpdateBlocksLostUpdate(t *testing.T) {
	d := newUserDB(t)
	tx := mustBegin(t, d)
	key, err := tx.Insert("users", Row{"name": "ctr", "rating": int64(0), "region": int64(1)})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	t1 := mustBegin(t, d)
	t2 := mustBegin(t, d)
	r1, err := t1.GetForUpdate("users", key)
	if err != nil {
		t.Fatalf("t1 GetForUpdate: %v", err)
	}
	if _, err := t2.GetForUpdate("users", key); !errors.Is(err, ErrConflict) {
		t.Fatalf("t2 GetForUpdate = %v, want ErrConflict", err)
	}
	upd := r1.Clone()
	upd["rating"] = r1["rating"].(int64) + 1
	if err := t1.Update("users", key, upd); err != nil {
		t.Fatalf("t1 Update: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("t1 Commit: %v", err)
	}
	if err := t2.Abort(); err != nil {
		t.Fatalf("t2 Abort: %v", err)
	}
}

// TestPooledTxUnderCrashRecoverRace hammers pooled Begin/read/write/
// Commit/Abort from many goroutines while another goroutine cycles
// Crash/Recover and a third sweeps AbortAll — the full interleaving the
// generation word exists for. Run with -race; the invariant checked at
// the end is that the store still commits cleanly and every surviving
// row is schema-valid.
func TestPooledTxUnderCrashRecoverRace(t *testing.T) {
	d := newUserDB(t)
	seed := mustBegin(t, d)
	var keys []int64
	for i := 0; i < 8; i++ {
		k, err := seed.Insert("users", Row{"name": "u", "rating": int64(i), "region": int64(i % 3)})
		if err != nil {
			t.Fatalf("seed Insert: %v", err)
		}
		keys = append(keys, k)
	}
	if err := seed.Commit(); err != nil {
		t.Fatalf("seed Commit: %v", err)
	}
	seed.Recycle()

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Workers: pooled transaction churn, recycling only what they
	// settled themselves.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				tx, err := d.Begin()
				if err != nil {
					continue // crashed window
				}
				k := keys[(w+i)%len(keys)]
				switch i % 3 {
				case 0: // read-only view
					_, _ = tx.Get("users", k)
					if tx.Commit() == nil {
						tx.Recycle()
					}
				case 1: // read-modify-write through the locking read
					r, err := tx.GetForUpdate("users", k)
					if err == nil {
						upd := r.Clone()
						upd["rating"] = int64(i % 50)
						_ = tx.Update("users", k, upd)
					}
					if tx.Commit() == nil {
						tx.Recycle()
					}
				default: // abort path
					_, _ = tx.Get("users", k)
					if tx.Abort() == nil {
						tx.Recycle()
					}
				}
			}
		}(w)
	}

	// Crash/Recover cycler.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			d.Crash()
			_ = d.Recover()
		}
	}()

	// AbortAll sweeper (the microreboot rollback path).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			_ = d.AbortAll(nil)
		}
	}()

	for i := 0; i < 2000; i++ {
		tx, err := d.Begin()
		if err != nil {
			continue
		}
		_, _ = tx.Get("users", keys[i%len(keys)])
		if tx.Commit() == nil {
			tx.Recycle()
		}
	}
	stop.Store(true)
	wg.Wait()

	// The store must still work and hold schema-valid rows.
	if d.Crashed() {
		if err := d.Recover(); err != nil {
			t.Fatalf("final Recover: %v", err)
		}
	}
	fin := mustBegin(t, d)
	for _, k := range keys {
		r, err := fin.Get("users", k)
		if err != nil {
			t.Fatalf("final Get %d: %v", k, err)
		}
		if rating, ok := r["rating"].(int64); !ok || rating < -100 || rating > 100 {
			t.Fatalf("row %d rating corrupt: %v", k, r["rating"])
		}
	}
	if err := fin.Commit(); err != nil {
		t.Fatalf("final Commit: %v", err)
	}
}
