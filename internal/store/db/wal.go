package db

import (
	"encoding/json"
	"io"
	"sync"
)

// recKind enumerates WAL record kinds.
type recKind int

const (
	recCreateTable recKind = iota
	recInsert
	recUpdate
	recDelete
	recCommitMark
)

// walRecord is one logical log entry. Table mutations are grouped under a
// commit mark; only marked groups are replayed by Recover, so a crash
// mid-commit never exposes partial transactions.
type walRecord struct {
	Kind   recKind `json:"kind"`
	Table  string  `json:"table,omitempty"`
	Key    int64   `json:"key,omitempty"`
	Row    Row     `json:"row,omitempty"`
	Schema *Schema `json:"schema,omitempty"`
	TxID   uint64  `json:"tx,omitempty"`
}

// WAL is an append-only write-ahead log. Records live in memory and are
// optionally mirrored to an io.Writer as JSON lines for durability beyond
// the process (the experiments use the in-memory form; cmd/ebid-server can
// attach a file).
type WAL struct {
	mu      sync.Mutex
	records []walRecord
	sink    io.Writer
	enc     *json.Encoder
}

// NewWAL returns an in-memory WAL.
func NewWAL() *WAL { return &WAL{} }

// NewWALWithSink returns a WAL that additionally mirrors every record to w.
func NewWALWithSink(w io.Writer) *WAL {
	return &WAL{sink: w, enc: json.NewEncoder(w)}
}

func (w *WAL) append(rec walRecord) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.records = append(w.records, rec)
	if w.enc != nil {
		_ = w.enc.Encode(rec) // mirroring is best-effort; memory copy is authoritative
	}
}

// appendCommit writes a transaction's mutations followed by a commit mark,
// as one atomic group.
func (w *WAL) appendCommit(txID uint64, writes []walRecord) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, rec := range writes {
		rec.TxID = txID
		w.records = append(w.records, rec)
		if w.enc != nil {
			_ = w.enc.Encode(rec)
		}
	}
	mark := walRecord{Kind: recCommitMark, TxID: txID}
	w.records = append(w.records, mark)
	if w.enc != nil {
		_ = w.enc.Encode(mark)
	}
}

// Len returns the number of records in the log.
func (w *WAL) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.records)
}

// committed returns the replayable prefix of the log: table creations plus
// mutation groups that reached their commit mark.
func (w *WAL) committed() []walRecord {
	w.mu.Lock()
	defer w.mu.Unlock()
	// First pass: find committed transaction ids.
	done := map[uint64]bool{}
	for _, rec := range w.records {
		if rec.Kind == recCommitMark {
			done[rec.TxID] = true
		}
	}
	var out []walRecord
	for _, rec := range w.records {
		switch rec.Kind {
		case recCreateTable:
			out = append(out, rec)
		case recInsert, recUpdate, recDelete:
			if done[rec.TxID] {
				out = append(out, rec)
			}
		}
	}
	return out
}

// TruncateTail drops the last n records, simulating log damage for
// crash-recovery testing.
func (w *WAL) TruncateTail(n int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n > len(w.records) {
		n = len(w.records)
	}
	w.records = w.records[:len(w.records)-n]
}
