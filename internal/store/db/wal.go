package db

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"sync"
	"time"
)

// recKind enumerates WAL record kinds.
type recKind int

const (
	recCreateTable recKind = iota
	recInsert
	recUpdate
	recDelete
	recCommitMark
)

// walRecord is one logical log entry. Table mutations are grouped under a
// commit mark; only marked groups are replayed by Recover, so a crash
// mid-commit never exposes partial transactions.
type walRecord struct {
	Kind   recKind `json:"kind"`
	Table  string  `json:"table,omitempty"`
	Key    int64   `json:"key,omitempty"`
	Row    Row     `json:"row,omitempty"`
	Schema *Schema `json:"schema,omitempty"`
	TxID   uint64  `json:"tx,omitempty"`
}

// walBatch is one group commit: the records of every transaction that
// staged while the previous flush was in flight, written to the sink as a
// single buffered write. Staging happens under the same lock as appending
// to the in-memory log, so a batch's records are always the contiguous
// range [start, end) of that log — no copy needed. done is created lazily
// by the first follower and closes once the batch is on the sink.
type walBatch struct {
	start, end int
	done       chan struct{}
}

// WAL is an append-only write-ahead log. Records live in memory and are
// optionally mirrored to an io.Writer as JSON lines for durability beyond
// the process (the experiments use the in-memory form; cmd/ebid-server can
// attach a file).
//
// Sink mirroring uses group commit: concurrent committers staging while a
// flush is in flight coalesce into one batch, and the whole batch reaches
// the sink with a single Write — one flush per batch instead of one per
// transaction. The in-memory record list stays authoritative and is
// appended synchronously under w.mu, so replay order always equals commit
// order and Recover's semantics are unchanged; only the sink's flush
// boundary moves.
type WAL struct {
	mu      sync.Mutex
	records []walRecord
	sink    io.Writer
	// cur is the open batch the next stager joins; nil when the next
	// stager should lead a new batch. free is a spent batch available for
	// reuse (only batches no follower ever waited on). Guarded by mu.
	cur  *walBatch
	free *walBatch
	// window, when positive, is how long a batch leader lingers before
	// flushing so followers can pile in (group-commit window). Guarded by
	// mu.
	window time.Duration

	// flushMu serializes sink flushes; buf and enc belong to the flusher.
	flushMu sync.Mutex
	buf     bytes.Buffer
	enc     *json.Encoder

	// group-commit stats, guarded by mu.
	batches  uint64
	flushed  uint64
	maxBatch int
}

// NewWAL returns an in-memory WAL.
func NewWAL() *WAL { return &WAL{} }

// NewWALWithSink returns a WAL that additionally mirrors every record to w.
func NewWALWithSink(w io.Writer) *WAL {
	wal := &WAL{sink: w}
	wal.enc = json.NewEncoder(&wal.buf)
	return wal
}

// LoadWAL reads a sink file's JSON-line records back into a fresh WAL —
// the crash-safe startup path of a process whose previous incarnation
// mirrored its log to disk. Reading stops at the first damaged record (a
// crash mid-write leaves a torn tail); the returned offset is the byte
// position of the last intact record, which the caller should truncate
// the file to before appending new records. Commit-mark atomicity is
// untouched: a transaction whose mark fell in the torn tail is simply
// never replayed.
func LoadWAL(r io.Reader) (w *WAL, offset int64, err error) {
	w = &WAL{}
	dec := json.NewDecoder(r)
	dec.UseNumber()
	schemas := map[string]*Schema{}
	for {
		var rec walRecord
		if derr := dec.Decode(&rec); derr != nil {
			if errors.Is(derr, io.EOF) {
				return w, offset, nil
			}
			var syn *json.SyntaxError
			if errors.As(derr, &syn) || errors.Is(derr, io.ErrUnexpectedEOF) {
				// Torn tail: keep what decoded cleanly.
				return w, offset, nil
			}
			return w, offset, derr
		}
		if rec.Kind == recCreateTable && rec.Schema != nil {
			schemas[rec.Schema.Name] = rec.Schema
		}
		restoreRowTypes(rec.Row, schemas[rec.Table])
		w.records = append(w.records, rec)
		offset = dec.InputOffset()
	}
}

// restoreRowTypes converts json.Number values decoded from a sink file
// back to the Row contract's native Go types. encoding/json alone would
// hand every number back as float64, so an Int column recovered after a
// crash would no longer satisfy the int64 assertions the live code makes.
// The table's schema (logged by CreateTable, so always earlier in the WAL
// than any row touching it) decides; unknown columns fall back to
// int-then-float parsing.
func restoreRowTypes(r Row, s *Schema) {
	for k, v := range r {
		n, ok := v.(json.Number)
		if !ok {
			continue
		}
		if s != nil {
			if col, ok := s.column(k); ok {
				switch col.Type {
				case Int:
					if i, err := n.Int64(); err == nil {
						r[k] = i
						continue
					}
				case Float:
					if f, err := n.Float64(); err == nil {
						r[k] = f
						continue
					}
				}
			}
		}
		if i, err := n.Int64(); err == nil {
			r[k] = i
		} else if f, err := n.Float64(); err == nil {
			r[k] = f
		}
	}
}

// AttachSink starts mirroring records appended from here on to sink.
// Records already in the log (e.g. loaded by LoadWAL) are not rewritten.
func (w *WAL) AttachSink(sink io.Writer) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.sink = sink
	w.enc = json.NewEncoder(&w.buf)
}

// SetCommitWindow sets how long a group-commit leader waits for followers
// before flushing to the sink. Zero (the default) flushes immediately;
// batching then still happens whenever commits arrive while a flush is in
// flight.
func (w *WAL) SetCommitWindow(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.window = d
}

// GroupCommitStats reports sink batching: batches flushed, records
// flushed, and the largest batch seen.
func (w *WAL) GroupCommitStats() (batches, records uint64, maxBatch int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.batches, w.flushed, w.maxBatch
}

// walWait is a pending sink flush: the staged batch plus this staffer's
// role in it. The zero value waits for nothing, so the no-sink path needs
// no branch at the call sites. A value type — handing it back costs no
// allocation, unlike a wait closure.
type walWait struct {
	w      *WAL
	b      *walBatch
	leader bool
}

// Wait blocks until the staged records reach the sink — the batch leader
// performs the flush, followers ride it. Callers must not hold database
// locks (that is what lets concurrent commits pile into the batch).
func (ww walWait) Wait() {
	if ww.b == nil {
		return
	}
	if ww.leader {
		ww.w.flushBatch(ww.b)
		return
	}
	<-ww.b.done
}

// append logs one record. The returned walWait blocks until the record
// reaches the sink (no-op when there is no sink); callers must invoke it
// without holding database locks.
func (w *WAL) append(rec walRecord) walWait {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.records = append(w.records, rec)
	if w.sink == nil {
		return walWait{}
	}
	return w.stageLocked(1)
}

// appendCommit writes a transaction's mutations followed by a commit mark,
// as one atomic group. The returned walWait is as for append.
func (w *WAL) appendCommit(txID uint64, writes []walRecord) walWait {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, rec := range writes {
		rec.TxID = txID
		w.records = append(w.records, rec)
	}
	w.records = append(w.records, walRecord{Kind: recCommitMark, TxID: txID})
	if w.sink == nil {
		return walWait{}
	}
	return w.stageLocked(len(writes) + 1)
}

// stageLocked queues the last n in-memory records for the sink. Caller
// holds w.mu. The first stager after a seal leads the batch (its Wait
// performs the flush); later stagers join and their Waits just block on
// the leader. Batch order equals staging order, so the sink's record
// order always matches the in-memory log.
func (w *WAL) stageLocked(n int) walWait {
	if b := w.cur; b != nil {
		b.end = len(w.records)
		if b.done == nil {
			b.done = make(chan struct{})
		}
		return walWait{w: w, b: b}
	}
	b := w.free
	if b == nil {
		b = &walBatch{}
	}
	w.free = nil
	b.start = len(w.records) - n
	b.end = len(w.records)
	b.done = nil
	w.cur = b
	w.batches++
	return walWait{w: w, b: b, leader: true}
}

// flushBatch is the leader's wait: linger for the commit window, seal the
// batch, and push it to the sink in one write. flushMu makes flushes
// strictly sequential, so a new leader formed during this flush cannot
// overtake it.
func (w *WAL) flushBatch(b *walBatch) {
	w.mu.Lock()
	window := w.window
	w.mu.Unlock()
	if window > 0 {
		time.Sleep(window)
	}
	w.flushMu.Lock()
	// Seal: stagers from here on start the next batch. No follower can
	// join after this point, so b's range and done channel are final.
	w.mu.Lock()
	if w.cur == b {
		w.cur = nil
	}
	recs := w.records[b.start:b.end]
	done := b.done
	w.mu.Unlock()
	for i := range recs {
		_ = w.enc.Encode(recs[i]) // mirroring is best-effort; memory copy is authoritative
	}
	if w.buf.Len() > 0 {
		_, _ = w.sink.Write(w.buf.Bytes())
		w.buf.Reset()
	}
	w.flushMu.Unlock()
	w.mu.Lock()
	w.flushed += uint64(len(recs))
	if len(recs) > w.maxBatch {
		w.maxBatch = len(recs)
	}
	if done == nil {
		// Nobody but this leader ever referenced b; recycle it.
		w.free = b
	}
	w.mu.Unlock()
	if done != nil {
		close(done)
	}
}

// Len returns the number of records in the log.
func (w *WAL) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.records)
}

// committed returns the replayable prefix of the log: table creations plus
// mutation groups that reached their commit mark.
func (w *WAL) committed() []walRecord {
	w.mu.Lock()
	defer w.mu.Unlock()
	// First pass: find committed transaction ids.
	done := map[uint64]bool{}
	for _, rec := range w.records {
		if rec.Kind == recCommitMark {
			done[rec.TxID] = true
		}
	}
	var out []walRecord
	for _, rec := range w.records {
		switch rec.Kind {
		case recCreateTable:
			out = append(out, rec)
		case recInsert, recUpdate, recDelete:
			if done[rec.TxID] {
				out = append(out, rec)
			}
		}
	}
	return out
}

// TruncateTail drops the last n records, simulating log damage for
// crash-recovery testing.
func (w *WAL) TruncateTail(n int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n > len(w.records) {
		n = len(w.records)
	}
	w.records = w.records[:len(w.records)-n]
}
