package db

import (
	"bytes"
	"testing"
)

// TestLoadWALRoundTrip mirrors commits to a buffer, reloads them with
// LoadWAL as a restarted process would, and checks the recovered
// database sees exactly the committed state.
func TestLoadWALRoundTrip(t *testing.T) {
	var sink bytes.Buffer
	w := NewWALWithSink(&sink)
	d := New(w)
	if err := d.CreateTable(userSchema()); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	tx := mustBegin(t, d)
	k1, _ := tx.Insert("users", Row{"name": "durable", "rating": int64(1), "region": int64(1)})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	loaded, off, err := LoadWAL(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatalf("LoadWAL: %v", err)
	}
	// The offset may exclude the final record's trailing newline; that
	// is still a clean append point for the next incarnation.
	if off < int64(sink.Len()-1) {
		t.Fatalf("intact file: offset = %d, want >= %d", off, sink.Len()-1)
	}
	if loaded.Len() != w.Len() {
		t.Fatalf("loaded %d records, want %d", loaded.Len(), w.Len())
	}
	d2 := New(loaded)
	if err := d2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	tx2 := mustBegin(t, d2)
	defer tx2.Abort()
	if _, err := tx2.Get("users", k1); err != nil {
		t.Fatalf("committed row missing after file reload: %v", err)
	}
}

// TestLoadWALRestoresRowTypes checks the file round trip preserves the
// Row contract's Go types: an Int column must come back as int64 (not
// encoding/json's float64) — the live code asserts on it — and a Float
// column must stay float64 even when its value is integral.
func TestLoadWALRestoresRowTypes(t *testing.T) {
	var sink bytes.Buffer
	w := NewWALWithSink(&sink)
	d := New(w)
	schema := Schema{
		Name: "typed",
		Columns: []Column{
			{Name: "count", Type: Int},
			{Name: "price", Type: Float},
			{Name: "label", Type: Str},
		},
	}
	if err := d.CreateTable(schema); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	tx := mustBegin(t, d)
	k, err := tx.Insert("typed", Row{"count": int64(7), "price": float64(3), "label": "x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	loaded, _, err := LoadWAL(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatalf("LoadWAL: %v", err)
	}
	d2 := New(loaded)
	if err := d2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	tx2 := mustBegin(t, d2)
	defer tx2.Abort()
	row, err := tx2.Get("typed", k)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := row["count"].(int64); !ok || v != 7 {
		t.Fatalf("count recovered as %T(%v), want int64(7)", row["count"], row["count"])
	}
	if v, ok := row["price"].(float64); !ok || v != 3 {
		t.Fatalf("price recovered as %T(%v), want float64(3)", row["price"], row["price"])
	}
}

// TestLoadWALTornTail torn-writes the last record (a crash mid-flush)
// and checks the loader stops at the last intact record and reports the
// truncation offset, so the next incarnation can append cleanly.
func TestLoadWALTornTail(t *testing.T) {
	var sink bytes.Buffer
	w := NewWALWithSink(&sink)
	d := New(w)
	if err := d.CreateTable(userSchema()); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	tx := mustBegin(t, d)
	k1, _ := tx.Insert("users", Row{"name": "safe", "rating": int64(1), "region": int64(1)})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	intact := sink.Len()
	tx2 := mustBegin(t, d)
	if _, err := tx2.Insert("users", Row{"name": "torn", "rating": int64(2), "region": int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	// Tear the file mid-way through the second transaction's records.
	torn := sink.Bytes()[:intact+(sink.Len()-intact)/2]

	loaded, off, err := LoadWAL(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("LoadWAL on torn file: %v", err)
	}
	if off > int64(len(torn)) || off < int64(intact-1) {
		t.Fatalf("truncation offset %d outside [%d, %d]", off, intact-1, len(torn))
	}
	d2 := New(loaded)
	if err := d2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	tx3 := mustBegin(t, d2)
	defer tx3.Abort()
	if _, err := tx3.Get("users", k1); err != nil {
		t.Fatalf("first (fully flushed) commit lost: %v", err)
	}
	// The torn transaction never reached its commit mark in the kept
	// prefix — it must not be replayed.
	rows := 0
	err = tx3.Scan("users", func(key int64, row Row) bool {
		rows++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != 1 {
		t.Fatalf("replayed %d rows, want 1 (torn tx must vanish)", rows)
	}
}

// TestAttachSinkAppendsOnly checks a reloaded WAL with a freshly
// attached sink mirrors only new records — replaying the old ones into
// the file would double them on the next recovery.
func TestAttachSinkAppendsOnly(t *testing.T) {
	var sink bytes.Buffer
	w := NewWALWithSink(&sink)
	d := New(w)
	if err := d.CreateTable(userSchema()); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	loaded, _, err := LoadWAL(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	before := loaded.Len()
	var next bytes.Buffer
	loaded.AttachSink(&next)
	d2 := New(loaded)
	if err := d2.Recover(); err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(t, d2)
	if _, err := tx.Insert("users", Row{"name": "new", "rating": int64(1), "region": int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() <= before {
		t.Fatal("new commit did not append to the reloaded log")
	}
	reloaded, _, err := LoadWAL(bytes.NewReader(next.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := reloaded.Len(); got != loaded.Len()-before {
		t.Fatalf("sink after AttachSink holds %d records, want only the %d new ones",
			got, loaded.Len()-before)
	}
	if bytes.Contains(next.Bytes(), []byte(`"schema"`)) {
		t.Fatal("old create-table record re-mirrored into the new sink")
	}
}
