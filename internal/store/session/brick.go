package session

import (
	"fmt"
	"hash/crc32"
	"sync"
	"time"
)

// BrickRestartTime is the modeled time to reboot a brick process and
// stream its shard back from the surviving replicas (Ling et al. report
// single-digit seconds for brick recovery; re-replication dominates).
const BrickRestartTime = 2 * time.Second

// tombstone remembers a deleted session's version so a stale replica
// copy (an old read-repair or re-replication snapshot) cannot resurrect
// it. Tombstones expire with the lease TTL and are reaped with it.
type tombstone struct {
	version uint64
	expires time.Duration
}

// Brick owns one replica of one shard: its own lock, lease clock,
// checksummed entries, and a crash/restart lifecycle. Bricks are
// themselves microrebootable — a crash discards the replica's RAM state,
// and a restart brings the brick back empty, ready for the cluster to
// re-replicate the shard into it.
type Brick struct {
	name           string
	shard, replica int

	mu      sync.Mutex
	entries map[string]ssmEntry
	tombs   map[string]tombstone
	down    bool
	slow    bool
	// retired marks a brick whose shard was removed from the ring and
	// fully drained: it holds nothing and will never come back.
	retired bool
	// discarded counts checksum failures auto-discarded on read.
	discarded int
	// restarts counts completed crash/restart cycles.
	restarts int
}

func newBrick(shard, replica int) *Brick {
	return &Brick{
		name:    fmt.Sprintf("ssm/s%d-r%d", shard, replica),
		shard:   shard,
		replica: replica,
		entries: map[string]ssmEntry{},
		tombs:   map[string]tombstone{},
	}
}

// Name identifies the brick ("ssm/s<shard>-r<replica>").
func (b *Brick) Name() string { return b.name }

// Shard returns the shard this brick replicates.
func (b *Brick) Shard() int { return b.shard }

// Replica returns the brick's replica index within its shard.
func (b *Brick) Replica() int { return b.replica }

// Up reports whether the brick is live.
func (b *Brick) Up() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.down
}

// Slow reports whether the brick is marked degraded.
func (b *Brick) Slow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.slow
}

// SetSlow marks the brick degraded; the cluster routes reads away from
// slow replicas while any healthy replica is available.
func (b *Brick) SetSlow(slow bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.slow = slow
}

// Len reports how many entries the brick holds (0 while down).
func (b *Brick) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.entries)
}

// Discarded reports how many corrupted entries this brick self-discarded.
func (b *Brick) Discarded() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.discarded
}

// Restarts reports completed crash/restart cycles.
func (b *Brick) Restarts() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.restarts
}

// Crash kills the brick: its RAM-resident replica is lost and every
// operation fails with ErrDown until Restart. It returns how many entries
// were lost. Crashing a crashed brick is a no-op.
func (b *Brick) Crash() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down {
		return 0
	}
	n := len(b.entries)
	b.entries = map[string]ssmEntry{}
	b.tombs = map[string]tombstone{}
	b.down = true
	return n
}

// Retired reports whether the brick's shard was removed from the ring.
func (b *Brick) Retired() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.retired
}

// retire shuts the brick down permanently after its shard drained. Every
// operation fails with ErrDown from here on, and Restart refuses to bring
// it back.
func (b *Brick) retire() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.retired = true
	b.down = true
	b.entries = map[string]ssmEntry{}
	b.tombs = map[string]tombstone{}
}

// Restart brings a crashed brick back up, empty and healthy. The cluster
// re-replicates the shard into it (see SSMCluster.RestartBrick). A
// retired brick stays down: its shard no longer exists.
func (b *Brick) Restart() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.down || b.retired {
		return
	}
	b.down = false
	b.slow = false
	b.entries = map[string]ssmEntry{}
	b.tombs = map[string]tombstone{}
	b.restarts++
}

// put stores one checksummed entry. Version ordering is enforced here: a
// put older than the replica's current copy (or than a deletion
// tombstone) is dropped, and an equal-version put keeps whichever lease
// expires later — renewal extends expires without bumping the version,
// so a migration or repair copy carrying the un-renewed expiry must not
// shorten an active session's lease. The drop still acks — the replica
// holds state at least as new as the put.
func (b *Brick) put(id string, e ssmEntry) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down {
		return ErrDown
	}
	if t, ok := b.tombs[id]; ok && e.version <= t.version {
		return nil
	}
	if cur, ok := b.entries[id]; ok {
		if cur.version > e.version {
			return nil
		}
		if cur.version == e.version && cur.expires >= e.expires {
			return nil
		}
	}
	b.entries[id] = e
	return nil
}

// renew extends the lease of an existing entry without touching its
// blob; renewing a missing (or deleted) entry is a no-op, so lease
// renewal can never resurrect or overwrite anything. It reports whether
// a lease was actually extended (the cluster's write-amplification
// accounting counts these).
func (b *Brick) renew(id string, expires time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down {
		return false
	}
	if e, ok := b.entries[id]; ok && expires > e.expires {
		e.expires = expires
		b.entries[id] = e
		return true
	}
	return false
}

// forget drops the local copy of id if it is no older than version — the
// migration handoff removal after the entry was copied to its new owner
// shard. Unlike del it leaves no tombstone: ownership moved, the data did
// not die. A copy newer than the migrated version is kept (it would only
// exist if a writer raced the ring change; the sweep revisits it).
func (b *Brick) forget(id string, version uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down {
		return
	}
	if e, ok := b.entries[id]; ok && e.version <= version {
		delete(b.entries, id)
	}
}

// peek returns the raw entry for id without lease or corruption
// side effects — the migrator validates and version-filters the copy
// itself and must not discard or expire anything while doing so.
func (b *Brick) peek(id string) (ssmEntry, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down {
		return ssmEntry{}, false
	}
	e, ok := b.entries[id]
	return e, ok
}

// get returns the entry for id, verifying its checksum and lease. A
// checksum mismatch discards the entry locally and returns ErrCorrupted;
// an expired lease deletes it and reports ErrNotFound.
func (b *Brick) get(id string, now time.Duration) (ssmEntry, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down {
		return ssmEntry{}, ErrDown
	}
	e, ok := b.entries[id]
	if !ok {
		return ssmEntry{}, ErrNotFound
	}
	if e.expires < now {
		delete(b.entries, id)
		return ssmEntry{}, ErrNotFound
	}
	if crc32.ChecksumIEEE(e.blob) != e.checksum {
		delete(b.entries, id)
		b.discarded++
		return ssmEntry{}, ErrCorrupted
	}
	return e, nil
}

// del removes the entry (unless a newer write already superseded the
// delete) and leaves a tombstone so stale replica data cannot bring the
// session back. tombExpires bounds how long the tombstone is kept.
func (b *Brick) del(id string, version uint64, tombExpires time.Duration) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down {
		return ErrDown
	}
	if e, ok := b.entries[id]; !ok || e.version <= version {
		delete(b.entries, id)
	}
	if t, ok := b.tombs[id]; !ok || version > t.version {
		b.tombs[id] = tombstone{version: version, expires: tombExpires}
	}
	return nil
}

// reap removes entries (and tombstones) whose leases lapsed and returns
// the reaped entry ids.
func (b *Brick) reap(now time.Duration) []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down {
		return nil
	}
	var ids []string
	for id, e := range b.entries {
		if e.expires < now {
			delete(b.entries, id)
			ids = append(ids, id)
		}
	}
	for id, t := range b.tombs {
		if t.expires < now {
			delete(b.tombs, id)
		}
	}
	return ids
}

// ids lists the brick's live entry ids (unsorted).
func (b *Brick) ids() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.entries))
	for id := range b.entries {
		out = append(out, id)
	}
	return out
}

// snapshot copies the brick's entries and tombstones (for re-replication
// into a peer): tombstones must travel with the data or a restarted
// brick could resurrect a session deleted while it was down.
func (b *Brick) snapshot() (map[string]ssmEntry, map[string]tombstone) {
	b.mu.Lock()
	defer b.mu.Unlock()
	entries := make(map[string]ssmEntry, len(b.entries))
	for id, e := range b.entries {
		entries[id] = e
	}
	tombs := make(map[string]tombstone, len(b.tombs))
	for id, t := range b.tombs {
		tombs[id] = t
	}
	return entries, tombs
}

// adoptTombs installs tombstones (newest version wins) during
// re-replication, before any entries are merged in.
func (b *Brick) adoptTombs(tombs map[string]tombstone) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down {
		return
	}
	for id, t := range tombs {
		if cur, ok := b.tombs[id]; !ok || t.version > cur.version {
			b.tombs[id] = t
		}
	}
}

// corruptBits flips a bit in the stored blob, leaving the checksum stale
// so the next get detects it. Reports whether the brick held the id.
func (b *Brick) corruptBits(id string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[id]
	if !ok || b.down || len(e.blob) == 0 {
		return false
	}
	blob := append([]byte(nil), e.blob...)
	blob[len(blob)/2] ^= 0x10
	e.blob = blob
	b.entries[id] = e
	return true
}
