package session

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ClusterConfig parameterizes an SSMCluster.
type ClusterConfig struct {
	// Shards is the number of hash shards S the cluster starts with
	// (default 4). AddShard/RemoveShard grow and shrink the ring at
	// runtime; Shards records the construction-time geometry only.
	Shards int
	// Replicas is the number of brick replicas N per shard (default 3).
	Replicas int
	// WriteQuorum is W: a write succeeds once W of the shard's N replicas
	// acknowledge it (default 2). W ≤ N is required.
	WriteQuorum int
	// LeaseTTL is how long a written session stays alive without renewal
	// (default DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Now supplies virtual time for lease accounting; nil makes leases
	// effectively immortal (useful for unit tests).
	Now func() time.Duration
}

func (c *ClusterConfig) fill() error {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.WriteQuorum == 0 {
		c.WriteQuorum = 2
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = DefaultLeaseTTL
	}
	if c.Now == nil {
		c.Now = func() time.Duration { return 0 }
	}
	if c.Shards < 1 || c.Replicas < 1 {
		return fmt.Errorf("session: cluster needs ≥1 shard and ≥1 replica, got %d×%d", c.Shards, c.Replicas)
	}
	if c.WriteQuorum < 1 || c.WriteQuorum > c.Replicas {
		return fmt.Errorf("session: write quorum %d outside 1..%d", c.WriteQuorum, c.Replicas)
	}
	return nil
}

// ErrResizing is returned by AddShard/RemoveShard while a previous ring
// change is still migrating; the SSM applies one ring change at a time.
var ErrResizing = errors.New("session: ring change already in progress")

// ringPoint is one virtual node on the consistent-hash ring.
type ringPoint struct {
	hash  uint32
	shard int
}

// hashRing maps session ids onto shards via consistent hashing. Each ring
// is immutable once built and carries a version; a ring change installs a
// new ring and keeps the old one around until migration drains it, so
// lookups against either generation stay lock-free.
type hashRing struct {
	version uint64
	shards  []int // sorted shard ids on this ring
	points  []ringPoint
}

// ringVirtualNodes is the number of virtual points per shard; enough to
// spread load within a few percent of uniform.
const ringVirtualNodes = 64

// newHashRing builds ring generation version over the given shard ids.
// Virtual-node hashes depend only on the shard id, so adding or removing
// a shard moves only the keys that change owner — the consistent-hashing
// property elasticity relies on.
func newHashRing(version uint64, shardIDs []int) *hashRing {
	ids := append([]int(nil), shardIDs...)
	sort.Ints(ids)
	r := &hashRing{version: version, shards: ids, points: make([]ringPoint, 0, len(ids)*ringVirtualNodes)}
	for _, s := range ids {
		for v := 0; v < ringVirtualNodes; v++ {
			h := crc32.ChecksumIEEE([]byte(fmt.Sprintf("shard-%d#%d", s, v)))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

func (r *hashRing) lookup(id string) int {
	h := crc32.ChecksumIEEE([]byte(id))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// SSMCluster implements Store over a brick cluster: S consistent-hash
// shards × N replica Bricks, write-to-W-of-N and read-from-any-live-
// replica. Session state survives brick crashes as long as each shard
// keeps one live replica holding the data; writes need W live replicas.
// Reads renew the lease once a quarter of it has elapsed and repair the
// entry onto live replicas that missed it (read-repair), so replicas
// re-converge after transient brick outages even before explicit
// re-replication runs.
//
// The ring is elastic: AddShard and RemoveShard install a new ring
// generation at runtime, and a background migrator (MigrateStep) streams
// every entry whose owner changed from its old shard to its new one.
// While a migration is in flight, reads consult the new owner first and
// fall back to the previous ring's owner (dual-read), promoting what they
// find; writes land on the new owner only; deletes tombstone both. The
// versioned entries and tombstones guarantee a migration copy can never
// undo a newer write or resurrect a deleted session.
type SSMCluster struct {
	cfg ClusterConfig

	// version orders writes and deletes cluster-wide; replicas keep the
	// newest version they have seen, so stale repair data loses races.
	version atomic.Uint64

	// state is the current ring topology. It is an immutable snapshot
	// swapped atomically on every ring change, so the per-operation
	// owner lookups stay lock-free the way the fixed-ring design's were.
	state atomic.Pointer[ringState]

	// migrateMu single-flights MigrateStep: ring changes only happen
	// while no migration is in flight, and a migration only completes
	// inside the step that drained it, so holding this across a step
	// pins the topology the sweep works against.
	migrateMu sync.Mutex
	// migQueue is the drain worklist: the misplaced ids collected once
	// per ring generation (migRing identifies the generation), consumed
	// by successive MigrateSteps so a bounded step costs O(step), not a
	// full cluster sweep. Guarded by migrateMu.
	migQueue []string
	migRing  *hashRing

	// migrated counts entries moved by the migrator, cumulatively.
	migrated atomic.Int64
	// renewals counts per-replica lease-renewal writes issued by reads.
	renewals atomic.Int64
	// slowBypasses counts reads served by a healthy replica while a slow
	// one was routed around.
	slowBypasses atomic.Int64
	// slowServed counts reads actually served by a degraded brick (no
	// healthy replica was available, or routing was disabled).
	slowServed atomic.Int64
	// slowRoutingOff disables the slow-replica read routing, so reads hit
	// replicas in natural order even when one is degraded — the
	// fail-stutter baseline the brick-slow experiment measures against.
	slowRoutingOff atomic.Bool

	mu        sync.Mutex
	nextShard int
	// retired holds the bricks of removed shards (diagnostics only).
	retired []*Brick
	// onRestart callbacks fire after a brick restart + re-replication
	// (the fault injector uses this to clear brick faults).
	onRestart []func(*Brick)
}

// ringState is one immutable generation of the cluster topology: the
// current ring, the pre-change ring while a migration drains it, and the
// shard → replica-bricks map (rebuilt, never mutated, on ring changes).
type ringState struct {
	ring *hashRing
	// prev is non-nil while the migrator is still draining the previous
	// ring generation.
	prev *hashRing
	// shards maps shard id → its replica bricks. Ids are stable and
	// never reused; a removed shard leaves the map once drained.
	shards map[int][]*Brick
	// retiring is the shard id being drained toward removal (-1: none).
	retiring int
}

// shardIDs returns the state's live shard ids, sorted.
func (st *ringState) shardIDs() []int {
	ids := make([]int, 0, len(st.shards))
	for id := range st.shards {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// cloneShards copies the shard map for a new state generation.
func (st *ringState) cloneShards() map[int][]*Brick {
	shards := make(map[int][]*Brick, len(st.shards)+1)
	for id, bricks := range st.shards {
		shards[id] = bricks
	}
	return shards
}

// NewSSMCluster builds a brick cluster from cfg; it panics only on
// impossible configurations (use cfg defaults for zero fields).
func NewSSMCluster(cfg ClusterConfig) (*SSMCluster, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	c := &SSMCluster{cfg: cfg, nextShard: cfg.Shards}
	st := &ringState{shards: map[int][]*Brick{}, retiring: -1}
	ids := make([]int, 0, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		replicas := make([]*Brick, cfg.Replicas)
		for r := range replicas {
			replicas[r] = newBrick(s, r)
		}
		st.shards[s] = replicas
		ids = append(ids, s)
	}
	st.ring = newHashRing(1, ids)
	c.state.Store(st)
	return c, nil
}

// Name implements Store.
func (c *SSMCluster) Name() string { return "SSMCluster" }

// SurvivesProcessRestart implements Store: brick state lives off-node.
func (c *SSMCluster) SurvivesProcessRestart() bool { return true }

// Config returns the construction-time cluster geometry (ShardIDs
// reflects elastic changes).
func (c *SSMCluster) Config() ClusterConfig { return c.cfg }

// ShardIDs returns the live shard ids, sorted.
func (c *SSMCluster) ShardIDs() []int {
	return c.state.Load().shardIDs()
}

// RingVersion returns the current ring generation (1 at construction,
// +1 per AddShard/RemoveShard).
func (c *SSMCluster) RingVersion() uint64 {
	return c.state.Load().ring.version
}

// Migrating reports whether a ring change is still draining.
func (c *SSMCluster) Migrating() bool {
	return c.state.Load().prev != nil
}

// MigratedEntries reports how many entries the migrator has moved since
// construction.
func (c *SSMCluster) MigratedEntries() int {
	return int(c.migrated.Load())
}

// RenewalWrites reports how many per-replica lease-renewal writes reads
// have issued (the read-repair write-amplification the deferred-renewal
// policy bounds).
func (c *SSMCluster) RenewalWrites() int {
	return int(c.renewals.Load())
}

// ElasticStatus is a point-in-time view of the ring for operators.
type ElasticStatus struct {
	RingVersion uint64 `json:"ring_version"`
	Shards      []int  `json:"shards"`
	Migrating   bool   `json:"migrating"`
	// Retiring is the shard id draining toward removal, -1 when none.
	Retiring int `json:"retiring"`
	// Migrated is the cumulative entry count moved by the migrator.
	Migrated int `json:"migrated_entries"`
	// Renewals is the cumulative lease-renewal write count.
	Renewals int `json:"renewal_writes"`
}

// Elastic returns the current ring status.
func (c *SSMCluster) Elastic() ElasticStatus {
	st := c.state.Load()
	return ElasticStatus{
		RingVersion: st.ring.version,
		Shards:      st.shardIDs(),
		Migrating:   st.prev != nil,
		Retiring:    st.retiring,
		Migrated:    int(c.migrated.Load()),
		Renewals:    int(c.renewals.Load()),
	}
}

// ShardFor reports which shard a session id hashes to under the current
// ring (diagnostic aid).
func (c *SSMCluster) ShardFor(id string) int {
	return c.state.Load().ring.lookup(id)
}

// Bricks returns every live brick, ordered by shard then replica.
// Retired bricks are excluded.
func (c *SSMCluster) Bricks() []*Brick {
	st := c.state.Load()
	var out []*Brick
	for _, id := range st.shardIDs() {
		out = append(out, st.shards[id]...)
	}
	return out
}

// RetiredBricks returns the bricks of shards removed from the ring.
func (c *SSMCluster) RetiredBricks() []*Brick {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Brick(nil), c.retired...)
}

// BrickByName finds a live brick by its "ssm/s<shard>-r<replica>" name.
func (c *SSMCluster) BrickByName(name string) (*Brick, error) {
	for _, b := range c.Bricks() {
		if b.Name() == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("session: no brick named %q", name)
}

// owners resolves the replica sets responsible for id: the current
// ring's shard, plus the previous ring's shard when a migration is in
// flight and ownership differs. Lock-free: the state snapshot is
// immutable.
func (c *SSMCluster) owners(id string) (cur, old []*Brick) {
	st := c.state.Load()
	curShard := st.ring.lookup(id)
	cur = st.shards[curShard]
	if st.prev != nil {
		if prevShard := st.prev.lookup(id); prevShard != curShard {
			old = st.shards[prevShard]
		}
	}
	return cur, old
}

// ------------------------------------------------------------ elasticity

// AddShard grows the ring by one shard of Replicas fresh bricks and
// installs the new ring generation. Entries whose owner changed migrate
// in the background (MigrateStep); until the drain completes, reads fall
// back to the previous ring, so no session is ever unreachable. One ring
// change runs at a time: AddShard fails with ErrResizing mid-migration.
// It returns the new shard's id.
func (c *SSMCluster) AddShard() (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state.Load()
	if st.prev != nil {
		return 0, ErrResizing
	}
	id := c.nextShard
	c.nextShard++
	replicas := make([]*Brick, c.cfg.Replicas)
	for r := range replicas {
		replicas[r] = newBrick(id, r)
	}
	next := &ringState{shards: st.cloneShards(), prev: st.ring, retiring: -1}
	next.shards[id] = replicas
	next.ring = newHashRing(st.ring.version+1, next.shardIDs())
	c.state.Store(next)
	return id, nil
}

// RemoveShard shrinks the ring: shard id stops owning keys immediately
// (the new ring generation excludes it) and its entries drain to their
// new owners in the background. The shard's bricks are retired once the
// drain completes. Removing the last shard, an unknown shard, or a shard
// while another ring change is migrating is an error.
func (c *SSMCluster) RemoveShard(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state.Load()
	if st.prev != nil {
		return ErrResizing
	}
	if _, ok := st.shards[id]; !ok {
		return fmt.Errorf("session: no shard %d", id)
	}
	if len(st.shards) == 1 {
		return errors.New("session: cannot remove the last shard")
	}
	var ids []int
	for _, s := range st.shardIDs() {
		if s != id {
			ids = append(ids, s)
		}
	}
	next := &ringState{shards: st.cloneShards(), prev: st.ring, retiring: id}
	next.ring = newHashRing(st.ring.version+1, ids)
	c.state.Store(next)
	return nil
}

// collectMisplaced scans every live brick for ids sitting on a shard
// that is not their current-ring owner. One full-cluster scan; the
// result seeds (or verifies) the drain worklist.
func (c *SSMCluster) collectMisplaced(st *ringState) []string {
	seen := map[string]bool{}
	for _, sid := range st.shardIDs() {
		for _, b := range st.shards[sid] {
			for _, id := range b.ids() {
				if st.ring.lookup(id) != sid {
					seen[id] = true
				}
			}
		}
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// MigrateStep advances the background migrator by at most max entries.
// The first step of a ring generation collects the misplaced ids into a
// worklist (one full-cluster scan); each step then drains up to max of
// them: the newest checksum-valid copy across the old owner's replicas
// is copied to the new owner's replicas (versioned put — a newer write
// or tombstone on the destination wins), and the old copies are
// forgotten once W new-owner replicas ack. A copy that cannot reach
// quorum is requeued — migration never loses the only copy. When the
// worklist empties, a verifying rescan catches stragglers (a brick
// restart can re-replicate misplaced copies); only an empty rescan
// completes the migration: the previous ring is dropped and, after a
// RemoveShard, the drained shard's bricks retire.
//
// Steps are single-flighted: while one runs, ring changes are refused
// (ErrResizing, since prev != nil) and no other step can complete the
// drain, so the topology a step works against cannot shift under it.
// Callers schedule steps however suits them: a goroutine ticker in the
// live server, simulation timer events in the experiments, a tight loop
// in tests (MigrateAll).
func (c *SSMCluster) MigrateStep(max int) (moved int, done bool) {
	moved, done, _ = c.migrateStep(max)
	return moved, done
}

// migrateStep is MigrateStep plus the stall signal: stalled reports that
// at least one copy failed its destination write quorum this step (the
// entry was requeued). MigrateAll uses it to distinguish a quorum-less
// destination from a step that merely skipped already-gone worklist ids.
func (c *SSMCluster) migrateStep(max int) (moved int, done, stalled bool) {
	c.migrateMu.Lock()
	defer c.migrateMu.Unlock()
	st := c.state.Load()
	if st.prev == nil {
		return 0, true, false
	}
	// (Re)build the worklist on the first step of this ring generation.
	// Ring pointers identify generations: the ring cannot change while
	// prev != nil, so a stale worklist is impossible mid-drain.
	if c.migRing != st.ring {
		c.migQueue = c.collectMisplaced(st)
		c.migRing = st.ring
	}

	pending := false
	var requeue []string
	// The budget bounds ids examined, not successful moves, so a step
	// stays O(max) even when a quorum-less destination fails every copy.
	for examined := 0; examined < max && len(c.migQueue) > 0; examined++ {
		id := c.migQueue[0]
		c.migQueue = c.migQueue[1:]
		src := st.shards[st.prev.lookup(id)]
		dstShard := st.ring.lookup(id)
		// The newest intact copy across the old owner's replicas: one
		// copy per logical entry, never a corrupt one — a healthy
		// replica (or read-repair) covers the entry instead.
		var best ssmEntry
		found := false
		for _, b := range src {
			e, ok := b.peek(id)
			if !ok || crc32.ChecksumIEEE(e.blob) != e.checksum {
				continue
			}
			if !found || e.version > best.version ||
				(e.version == best.version && e.expires > best.expires) {
				best, found = e, true
			}
		}
		if !found {
			// Already moved, deleted, or promoted and forgotten — or the
			// id was collected off a non-prev-owner brick (a promotion
			// the verifying rescan will confirm settled).
			continue
		}
		acks := 0
		for _, ob := range st.shards[dstShard] {
			if ob.put(id, best) == nil {
				acks++
			}
		}
		if acks < c.cfg.WriteQuorum {
			// The new owner cannot durably take the entry yet (crashed
			// replicas); keep the old copies and retry later.
			pending = true
			requeue = append(requeue, id)
			continue
		}
		for _, b := range src {
			b.forget(id, best.version)
		}
		moved++
	}
	c.migQueue = append(c.migQueue, requeue...)
	if moved > 0 {
		c.migrated.Add(int64(moved))
	}
	if len(c.migQueue) > 0 || pending {
		return moved, false, pending
	}
	// Worklist drained: rescan to verify nothing was reintroduced while
	// we drained (brick restart re-replication, racing promotions).
	if rest := c.collectMisplaced(st); len(rest) > 0 {
		c.migQueue = rest
		return moved, false, false
	}
	c.migQueue, c.migRing = nil, nil

	// Drain verified empty: complete the migration. The single-flight
	// lock means no ring change happened mid-step, but be defensive.
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.state.Load()
	if cur.ring != st.ring || cur.prev == nil {
		return moved, cur.prev == nil, false
	}
	next := &ringState{ring: cur.ring, shards: cur.shards, retiring: -1}
	if cur.retiring >= 0 {
		bricks := cur.shards[cur.retiring]
		next.shards = cur.cloneShards()
		delete(next.shards, cur.retiring)
		for _, b := range bricks {
			b.retire()
		}
		c.retired = append(c.retired, bricks...)
	}
	c.state.Store(next)
	return moved, true, false
}

// migrateBatch is the per-step entry budget MigrateAll uses.
const migrateBatch = 256

// MigrateAll drives MigrateStep until the migration completes or stalls
// (a destination shard cannot reach its write quorum). It returns the
// total entries moved and whether the drain finished. Steps that merely
// skip already-gone worklist ids (sessions deleted or reaped since the
// list was collected) count as progress, not a stall.
func (c *SSMCluster) MigrateAll() (moved int, done bool) {
	stalls := 0
	// The iteration cap is a backstop against a bug ever wedging the
	// drain into skip/rescan cycles; real migrations finish in
	// ~entries/migrateBatch steps.
	for i := 0; i < 100000; i++ {
		n, ok, stalled := c.migrateStep(migrateBatch)
		moved += n
		if ok {
			return moved, true
		}
		// Quorum-stalled steps that move nothing twice in a row mean the
		// destination shard is down; give the caller the partial result
		// rather than spinning until it recovers.
		if stalled && n == 0 {
			if stalls++; stalls >= 2 {
				return moved, false
			}
		} else {
			stalls = 0
		}
	}
	return moved, false
}

// ------------------------------------------------------------ store API

// Write implements Store: marshal once, checksum, then write to the
// W-of-N quorum of the id's current-ring shard. Mid-migration writes land
// on the new owner only — dual-read covers the transition, and the
// version stamp makes any stale migration copy lose.
func (c *SSMCluster) Write(s *Session) error {
	if s == nil || s.ID == "" {
		return errors.New("session: Write requires a session with an ID")
	}
	blob, err := marshalSession(s)
	if err != nil {
		return err
	}
	e := ssmEntry{
		blob:     blob,
		checksum: crc32.ChecksumIEEE(blob),
		expires:  c.cfg.Now() + c.cfg.LeaseTTL,
		version:  c.version.Add(1),
	}
	shard, _ := c.owners(s.ID)
	if err := c.quorumReachable(shard); err != nil {
		return err
	}
	acks := 0
	for _, b := range shard {
		if b.put(s.ID, e) == nil {
			acks++
		}
	}
	if acks < c.cfg.WriteQuorum {
		return fmt.Errorf("%w: shard %d acked %d/%d replicas (quorum %d)",
			ErrDown, shard[0].Shard(), acks, len(shard), c.cfg.WriteQuorum)
	}
	return nil
}

// quorumReachable pre-checks that enough replicas are live for a mutation
// to reach its W-of-N quorum, so a doomed mutation does not dirty the
// survivors first.
func (c *SSMCluster) quorumReachable(shard []*Brick) error {
	live := 0
	for _, b := range shard {
		if b.Up() {
			live++
		}
	}
	if live < c.cfg.WriteQuorum {
		return fmt.Errorf("%w: shard %d has %d/%d live replicas (quorum %d)",
			ErrDown, shard[0].Shard(), live, len(shard), c.cfg.WriteQuorum)
	}
	return nil
}

// Read implements Store: it returns the session from any live replica of
// the id's owner shard, preferring healthy bricks over slow ones,
// renewing the lease once a quarter of the TTL has elapsed, and
// read-repairing replicas observed missing or corrupt. While a ring
// change is migrating, a miss on the new owner falls back to the previous
// ring's owner (dual-read); a hit there is promoted onto the new owner so
// the next read finds it in place. A replica whose copy fails its
// checksum discards it and the read falls through, so single-replica
// corruption is masked and healed. Renewal never rewrites blobs and
// repair is versioned, so a read racing a newer write or a delete cannot
// clobber either.
func (c *SSMCluster) Read(id string) (*Session, error) {
	now := c.cfg.Now()
	cur, old := c.owners(id)
	s, _, err := c.readShard(cur, id, now)
	if err == nil || old == nil || errors.Is(err, ErrCorrupted) {
		return s, err
	}
	sOld, eOld, errOld := c.readShard(old, id, now)
	if errOld != nil {
		// The migrator may have moved the entry old→new between our two
		// checks (miss the new owner, migrate, miss the old owner); one
		// re-check of the new owner closes that window, since entries
		// only ever move in that direction.
		if errors.Is(errOld, ErrNotFound) {
			if s, _, retryErr := c.readShard(cur, id, now); retryErr == nil {
				return s, nil
			}
		}
		// With the new owner unreachable the entry may still exist there,
		// so never let the old owner's miss claim it is gone.
		if errors.Is(err, ErrDown) {
			return nil, err
		}
		return nil, errOld
	}
	// Promote onto the new owner: the migration sweep forgets the old
	// copy later. The versioned put keeps a racing newer write intact.
	for _, b := range cur {
		_ = b.put(id, eOld)
	}
	return sOld, nil
}

// readShard serves id from one replica set, returning the decoded
// session and the raw entry (for dual-read promotion).
func (c *SSMCluster) readShard(shard []*Brick, id string, now time.Duration) (*Session, ssmEntry, error) {
	routing := !c.slowRoutingOff.Load()
	order := shard
	slow := 0
	if routing {
		order = make([]*Brick, 0, len(shard))
		for _, b := range shard {
			if b.Slow() {
				slow++
				continue
			}
			order = append(order, b)
		}
		if slow > 0 { // degraded replicas are the readers of last resort
			for _, b := range shard {
				if b.Slow() {
					order = append(order, b)
				}
			}
		}
	}

	live := 0
	sawCorrupt := false
	needRepair := make([]*Brick, 0, len(order))
	for _, b := range order {
		e, err := b.get(id, now)
		switch {
		case err == nil:
			if slow > 0 && !b.Slow() {
				c.slowBypasses.Add(1)
			}
			if b.Slow() {
				c.slowServed.Add(1)
			}
			// Deferred renewal: refreshing the lease on every replica read
			// made every read a cluster-wide write. Renew only once more
			// than a quarter of the TTL has elapsed — the lease still
			// cannot lapse under an active session, but a read-heavy
			// session costs at most 4 renewal rounds per TTL.
			if elapsed := now + c.cfg.LeaseTTL - e.expires; elapsed >= c.cfg.LeaseTTL/4 {
				e.expires = now + c.cfg.LeaseTTL
				renewed := 0
				for _, peer := range order {
					if peer.renew(id, e.expires) {
						renewed++
					}
				}
				c.renewals.Add(int64(renewed))
			}
			// Repair the replicas that demonstrably lacked the entry;
			// the versioned put drops the copy if they raced ahead.
			for _, peer := range needRepair {
				_ = peer.put(id, e)
			}
			s, uerr := unmarshalSession(e.blob)
			return s, e, uerr
		case errors.Is(err, ErrDown):
			// Skip and try the next replica.
		case errors.Is(err, ErrCorrupted):
			live++
			sawCorrupt = true
			needRepair = append(needRepair, b)
		default: // ErrNotFound
			live++
			needRepair = append(needRepair, b)
		}
	}
	if live == 0 {
		return nil, ssmEntry{}, fmt.Errorf("%w: shard %d has no live replica", ErrDown, shard[0].Shard())
	}
	if sawCorrupt {
		return nil, ssmEntry{}, fmt.Errorf("%w: %s (all surviving copies corrupt)", ErrCorrupted, id)
	}
	return nil, ssmEntry{}, fmt.Errorf("%w: %s", ErrNotFound, id)
}

// Delete implements Store: like writes, deletes need the W-of-N quorum so
// a majority of replicas agree the session is gone. Each replica keeps a
// versioned tombstone for the lease TTL so stale repair data cannot
// resurrect the session. Mid-migration the previous ring's owner is
// tombstoned too — otherwise a dual-read fallback or the migration sweep
// could bring the session back from the old shard.
func (c *SSMCluster) Delete(id string) error {
	cur, old := c.owners(id)
	if err := c.quorumReachable(cur); err != nil {
		return err
	}
	version := c.version.Add(1)
	tombExpires := c.cfg.Now() + c.cfg.LeaseTTL
	acks := 0
	for _, b := range cur {
		if b.del(id, version, tombExpires) == nil {
			acks++
		}
	}
	for _, b := range old {
		_ = b.del(id, version, tombExpires)
	}
	if acks < c.cfg.WriteQuorum {
		return fmt.Errorf("%w: shard %d acked %d/%d replicas (quorum %d)",
			ErrDown, cur[0].Shard(), acks, len(cur), c.cfg.WriteQuorum)
	}
	return nil
}

// Len implements Store: the number of distinct sessions held by live
// replicas (entries awaiting lease GC are counted, as in SSM). Distinct
// cluster-wide, so an entry mid-migration — briefly on both its old and
// new owner — counts once.
func (c *SSMCluster) Len() int {
	seen := map[string]bool{}
	for _, b := range c.Bricks() {
		for _, id := range b.ids() {
			seen[id] = true
		}
	}
	return len(seen)
}

// SessionIDs returns every distinct live session id, sorted.
func (c *SSMCluster) SessionIDs() []string {
	seen := map[string]bool{}
	for _, b := range c.Bricks() {
		for _, id := range b.ids() {
			seen[id] = true
		}
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ReapExpired garbage-collects lapsed leases on every brick and returns
// how many distinct sessions were collected.
func (c *SSMCluster) ReapExpired() int {
	now := c.cfg.Now()
	seen := map[string]bool{}
	for _, b := range c.Bricks() {
		for _, id := range b.reap(now) {
			seen[id] = true
		}
	}
	return len(seen)
}

// Discarded reports how many corrupted entries bricks have discarded.
func (c *SSMCluster) Discarded() int {
	n := 0
	for _, b := range c.Bricks() {
		n += b.Discarded()
	}
	return n
}

// SlowBypasses reports reads served by a healthy replica while a slow one
// was routed around.
func (c *SSMCluster) SlowBypasses() int {
	return int(c.slowBypasses.Load())
}

// SlowServedReads reports reads that were actually served by a degraded
// brick — the reads that paid the fail-stutter penalty.
func (c *SSMCluster) SlowServedReads() int {
	return int(c.slowServed.Load())
}

// SetSlowReadRouting enables (the default) or disables the slow-replica
// read routing. With routing off, reads hit a shard's replicas in natural
// order even when one is degraded — the baseline configuration of the
// fail-stutter experiment.
func (c *SSMCluster) SetSlowReadRouting(on bool) {
	c.slowRoutingOff.Store(!on)
}

// SlowReadRouting reports whether slow-replica read routing is enabled.
func (c *SSMCluster) SlowReadRouting() bool {
	return !c.slowRoutingOff.Load()
}

// ShardPopulations reports the distinct session population per live
// shard (the union over each shard's live replicas, so a missed
// replication does not undercount). The control plane's load probe
// samples this; entries awaiting lease GC are counted, as in Len.
func (c *SSMCluster) ShardPopulations() map[int]int {
	st := c.state.Load()
	out := make(map[int]int, len(st.shards))
	for _, sid := range st.shardIDs() {
		seen := map[string]bool{}
		for _, b := range st.shards[sid] {
			for _, id := range b.ids() {
				seen[id] = true
			}
		}
		out[sid] = len(seen)
	}
	return out
}

// SlowBrickPenalty is the modeled extra response time a session access
// pays when its read is served by a degraded (fail-stutter) brick: the
// brick answers, but late — the failure mode that motivates routing
// reads away from slow replicas instead of waiting them out.
const SlowBrickPenalty = 250 * time.Millisecond

// ReadPenalty reports the fail-stutter latency a read of id would pay
// under the current routing policy: zero when a healthy replica serves
// it, SlowBrickPenalty when the replica the routing would pick is
// degraded (with routing on, that only happens when every live replica
// of the owner shard is slow; with routing off, whenever the first live
// replica in natural order is). The cluster node's service-time model
// charges this per session access.
func (c *SSMCluster) ReadPenalty(id string) time.Duration {
	shard, _ := c.owners(id)
	if c.slowRoutingOff.Load() {
		for _, b := range shard {
			if !b.Up() {
				continue
			}
			if b.Slow() {
				return SlowBrickPenalty
			}
			return 0
		}
		return 0
	}
	sawLive := false
	for _, b := range shard {
		if !b.Up() {
			continue
		}
		sawLive = true
		if !b.Slow() {
			return 0
		}
	}
	if sawLive {
		return SlowBrickPenalty
	}
	return 0
}

// CorruptBits flips a bit in the first live replica holding id — the
// Table 2 "corrupt data inside SSM" fault, scoped to one brick. The next
// read of the damaged replica discards the copy and falls through to a
// healthy peer. Mid-migration the previous owner is checked too.
func (c *SSMCluster) CorruptBits(id string) error {
	cur, old := c.owners(id)
	for _, b := range append(append([]*Brick(nil), cur...), old...) {
		if b.corruptBits(id) {
			return nil
		}
	}
	return fmt.Errorf("%w: %s", ErrNotFound, id)
}

// DeadBricks lists the names of crashed bricks (recovery polls this the
// way the paper's RM consumes heartbeat-loss reports). Retired bricks are
// not dead — their shard no longer exists.
func (c *SSMCluster) DeadBricks() []string {
	var out []string
	for _, b := range c.Bricks() {
		if !b.Up() {
			out = append(out, b.Name())
		}
	}
	return out
}

// CrashBrick kills the named brick, losing its replica state.
func (c *SSMCluster) CrashBrick(name string) error {
	b, err := c.BrickByName(name)
	if err != nil {
		return err
	}
	b.Crash()
	return nil
}

// SetBrickSlow marks the named brick degraded (or heals it).
func (c *SSMCluster) SetBrickSlow(name string, slow bool) error {
	b, err := c.BrickByName(name)
	if err != nil {
		return err
	}
	b.SetSlow(slow)
	return nil
}

// OnBrickRestart registers a callback fired after a brick restart and
// re-replication complete.
func (c *SSMCluster) OnBrickRestart(fn func(*Brick)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onRestart = append(c.onRestart, fn)
}

// RestartBrick reboots a crashed brick and re-replicates its shard into
// it from the surviving replicas (newest lease wins), restoring full
// N-way redundancy. It returns the modeled restart duration so recovery
// managers can account for it on the simulation timeline; the store
// itself is consistent as soon as RestartBrick returns. Restarting a
// brick whose shard was removed from the ring fails: retired bricks
// never come back.
func (c *SSMCluster) RestartBrick(name string) (time.Duration, error) {
	b, err := c.BrickByName(name)
	if err != nil {
		return 0, err
	}
	b.Restart()
	peers := c.state.Load().shards[b.Shard()]
	merged := map[string]ssmEntry{}
	mergedTombs := map[string]tombstone{}
	for _, peer := range peers {
		if peer == b || !peer.Up() {
			continue
		}
		entries, tombs := peer.snapshot()
		for id, e := range entries {
			// Never replicate a copy that fails its checksum: merging
			// corrupt data would spread the damage until it could
			// outnumber (and eventually replace) every good copy.
			if crc32.ChecksumIEEE(e.blob) != e.checksum {
				continue
			}
			if cur, ok := merged[id]; !ok || e.version > cur.version ||
				(e.version == cur.version && e.expires > cur.expires) {
				merged[id] = e
			}
		}
		for id, t := range tombs {
			if cur, ok := mergedTombs[id]; !ok || t.version > cur.version {
				mergedTombs[id] = t
			}
		}
	}
	// Tombstones first: the versioned put then refuses any snapshot entry
	// that a concurrent delete has already superseded.
	b.adoptTombs(mergedTombs)
	for id, e := range merged {
		_ = b.put(id, e)
	}
	c.mu.Lock()
	callbacks := make([]func(*Brick), len(c.onRestart))
	copy(callbacks, c.onRestart)
	c.mu.Unlock()
	for _, fn := range callbacks {
		fn(b)
	}
	return BrickRestartTime, nil
}

var _ Store = (*SSMCluster)(nil)
