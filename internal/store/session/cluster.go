package session

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ClusterConfig parameterizes an SSMCluster.
type ClusterConfig struct {
	// Shards is the number of hash shards S (default 4).
	Shards int
	// Replicas is the number of brick replicas N per shard (default 3).
	Replicas int
	// WriteQuorum is W: a write succeeds once W of the shard's N replicas
	// acknowledge it (default 2). W ≤ N is required.
	WriteQuorum int
	// LeaseTTL is how long a written session stays alive without renewal
	// (default DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Now supplies virtual time for lease accounting; nil makes leases
	// effectively immortal (useful for unit tests).
	Now func() time.Duration
}

func (c *ClusterConfig) fill() error {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.WriteQuorum == 0 {
		c.WriteQuorum = 2
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = DefaultLeaseTTL
	}
	if c.Now == nil {
		c.Now = func() time.Duration { return 0 }
	}
	if c.Shards < 1 || c.Replicas < 1 {
		return fmt.Errorf("session: cluster needs ≥1 shard and ≥1 replica, got %d×%d", c.Shards, c.Replicas)
	}
	if c.WriteQuorum < 1 || c.WriteQuorum > c.Replicas {
		return fmt.Errorf("session: write quorum %d outside 1..%d", c.WriteQuorum, c.Replicas)
	}
	return nil
}

// ringPoint is one virtual node on the consistent-hash ring.
type ringPoint struct {
	hash  uint32
	shard int
}

// hashRing maps session ids onto shards via consistent hashing. The ring
// is immutable after construction, so lookups are lock-free.
type hashRing struct {
	points []ringPoint
}

// ringVirtualNodes is the number of virtual points per shard; enough to
// spread load within a few percent of uniform.
const ringVirtualNodes = 64

func newHashRing(shards int) *hashRing {
	r := &hashRing{points: make([]ringPoint, 0, shards*ringVirtualNodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < ringVirtualNodes; v++ {
			h := crc32.ChecksumIEEE([]byte(fmt.Sprintf("shard-%d#%d", s, v)))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

func (r *hashRing) lookup(id string) int {
	h := crc32.ChecksumIEEE([]byte(id))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// SSMCluster implements Store over a brick cluster: S consistent-hash
// shards × N replica Bricks, write-to-W-of-N and read-from-any-live-
// replica. Session state survives brick crashes as long as each shard
// keeps one live replica holding the data; writes need W live replicas.
// Reads renew the lease and repair the entry onto live replicas that
// missed it (read-repair), so replicas re-converge after transient brick
// outages even before explicit re-replication runs.
type SSMCluster struct {
	cfg    ClusterConfig
	ring   *hashRing
	shards [][]*Brick // [shard][replica]

	// version orders writes and deletes cluster-wide; replicas keep the
	// newest version they have seen, so stale repair data loses races.
	version atomic.Uint64

	mu sync.Mutex
	// onRestart callbacks fire after a brick restart + re-replication
	// (the fault injector uses this to clear brick faults).
	onRestart []func(*Brick)
	// slowBypasses counts reads served by a healthy replica while a slow
	// one was routed around.
	slowBypasses int
}

// NewSSMCluster builds a brick cluster from cfg; it panics only on
// impossible configurations (use cfg defaults for zero fields).
func NewSSMCluster(cfg ClusterConfig) (*SSMCluster, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	c := &SSMCluster{cfg: cfg, ring: newHashRing(cfg.Shards)}
	c.shards = make([][]*Brick, cfg.Shards)
	for s := range c.shards {
		c.shards[s] = make([]*Brick, cfg.Replicas)
		for r := range c.shards[s] {
			c.shards[s][r] = newBrick(s, r)
		}
	}
	return c, nil
}

// Name implements Store.
func (c *SSMCluster) Name() string { return "SSMCluster" }

// SurvivesProcessRestart implements Store: brick state lives off-node.
func (c *SSMCluster) SurvivesProcessRestart() bool { return true }

// Config returns the cluster geometry.
func (c *SSMCluster) Config() ClusterConfig { return c.cfg }

// ShardFor reports which shard a session id hashes to (diagnostic aid).
func (c *SSMCluster) ShardFor(id string) int { return c.ring.lookup(id) }

// Bricks returns every brick, ordered by shard then replica.
func (c *SSMCluster) Bricks() []*Brick {
	var out []*Brick
	for _, shard := range c.shards {
		out = append(out, shard...)
	}
	return out
}

// BrickByName finds a brick by its "ssm/s<shard>-r<replica>" name.
func (c *SSMCluster) BrickByName(name string) (*Brick, error) {
	for _, shard := range c.shards {
		for _, b := range shard {
			if b.Name() == name {
				return b, nil
			}
		}
	}
	return nil, fmt.Errorf("session: no brick named %q", name)
}

// Write implements Store: marshal once, checksum, then write to the W-of-N
// quorum of the id's shard.
func (c *SSMCluster) Write(s *Session) error {
	if s == nil || s.ID == "" {
		return errors.New("session: Write requires a session with an ID")
	}
	blob, err := marshalSession(s)
	if err != nil {
		return err
	}
	e := ssmEntry{
		blob:     blob,
		checksum: crc32.ChecksumIEEE(blob),
		expires:  c.cfg.Now() + c.cfg.LeaseTTL,
		version:  c.version.Add(1),
	}
	shard := c.shards[c.ring.lookup(s.ID)]
	if err := c.quorumReachable(shard); err != nil {
		return err
	}
	acks := 0
	for _, b := range shard {
		if b.put(s.ID, e) == nil {
			acks++
		}
	}
	if acks < c.cfg.WriteQuorum {
		return fmt.Errorf("%w: shard %d acked %d/%d replicas (quorum %d)",
			ErrDown, shard[0].Shard(), acks, len(shard), c.cfg.WriteQuorum)
	}
	return nil
}

// quorumReachable pre-checks that enough replicas are live for a mutation
// to reach its W-of-N quorum, so a doomed mutation does not dirty the
// survivors first.
func (c *SSMCluster) quorumReachable(shard []*Brick) error {
	live := 0
	for _, b := range shard {
		if b.Up() {
			live++
		}
	}
	if live < c.cfg.WriteQuorum {
		return fmt.Errorf("%w: shard %d has %d/%d live replicas (quorum %d)",
			ErrDown, shard[0].Shard(), live, len(shard), c.cfg.WriteQuorum)
	}
	return nil
}

// Read implements Store: it returns the session from any live replica,
// preferring healthy bricks over slow ones, renewing the lease on every
// replica and read-repairing the ones observed missing or corrupt. A
// replica whose copy fails its checksum discards it and the read falls
// through to the next replica, so single-replica corruption is masked
// and healed. Renewal never rewrites blobs and repair is versioned, so
// a read racing a newer write or a delete cannot clobber either.
func (c *SSMCluster) Read(id string) (*Session, error) {
	now := c.cfg.Now()
	shard := c.shards[c.ring.lookup(id)]

	order := make([]*Brick, 0, len(shard))
	slow := 0
	for _, b := range shard {
		if b.Slow() {
			slow++
			continue
		}
		order = append(order, b)
	}
	if slow > 0 { // degraded replicas are the readers of last resort
		for _, b := range shard {
			if b.Slow() {
				order = append(order, b)
			}
		}
	}

	live := 0
	sawCorrupt := false
	needRepair := make([]*Brick, 0, len(order))
	for _, b := range order {
		e, err := b.get(id, now)
		switch {
		case err == nil:
			if slow > 0 && !b.Slow() {
				c.mu.Lock()
				c.slowBypasses++
				c.mu.Unlock()
			}
			e.expires = now + c.cfg.LeaseTTL
			for _, peer := range order {
				peer.renew(id, e.expires)
			}
			// Repair the replicas that demonstrably lacked the entry;
			// the versioned put drops the copy if they raced ahead.
			for _, peer := range needRepair {
				_ = peer.put(id, e)
			}
			return unmarshalSession(e.blob)
		case errors.Is(err, ErrDown):
			// Skip and try the next replica.
		case errors.Is(err, ErrCorrupted):
			live++
			sawCorrupt = true
			needRepair = append(needRepair, b)
		default: // ErrNotFound
			live++
			needRepair = append(needRepair, b)
		}
	}
	if live == 0 {
		return nil, fmt.Errorf("%w: shard %d has no live replica", ErrDown, shard[0].Shard())
	}
	if sawCorrupt {
		return nil, fmt.Errorf("%w: %s (all surviving copies corrupt)", ErrCorrupted, id)
	}
	return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
}

// Delete implements Store: like writes, deletes need the W-of-N quorum so
// a majority of replicas agree the session is gone. Each replica keeps a
// versioned tombstone for the lease TTL so stale repair data cannot
// resurrect the session.
func (c *SSMCluster) Delete(id string) error {
	shard := c.shards[c.ring.lookup(id)]
	if err := c.quorumReachable(shard); err != nil {
		return err
	}
	version := c.version.Add(1)
	tombExpires := c.cfg.Now() + c.cfg.LeaseTTL
	acks := 0
	for _, b := range shard {
		if b.del(id, version, tombExpires) == nil {
			acks++
		}
	}
	if acks < c.cfg.WriteQuorum {
		return fmt.Errorf("%w: shard %d acked %d/%d replicas (quorum %d)",
			ErrDown, shard[0].Shard(), acks, len(shard), c.cfg.WriteQuorum)
	}
	return nil
}

// Len implements Store: the number of distinct sessions held by live
// replicas (entries awaiting lease GC are counted, as in SSM).
func (c *SSMCluster) Len() int {
	n := 0
	for _, shard := range c.shards {
		seen := map[string]bool{}
		for _, b := range shard {
			for _, id := range b.ids() {
				seen[id] = true
			}
		}
		n += len(seen)
	}
	return n
}

// SessionIDs returns every distinct live session id, sorted.
func (c *SSMCluster) SessionIDs() []string {
	seen := map[string]bool{}
	for _, shard := range c.shards {
		for _, b := range shard {
			for _, id := range b.ids() {
				seen[id] = true
			}
		}
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ReapExpired garbage-collects lapsed leases on every brick and returns
// how many distinct sessions were collected.
func (c *SSMCluster) ReapExpired() int {
	now := c.cfg.Now()
	n := 0
	for _, shard := range c.shards {
		seen := map[string]bool{}
		for _, b := range shard {
			for _, id := range b.reap(now) {
				seen[id] = true
			}
		}
		n += len(seen)
	}
	return n
}

// Discarded reports how many corrupted entries bricks have discarded.
func (c *SSMCluster) Discarded() int {
	n := 0
	for _, shard := range c.shards {
		for _, b := range shard {
			n += b.Discarded()
		}
	}
	return n
}

// SlowBypasses reports reads served by a healthy replica while a slow one
// was routed around.
func (c *SSMCluster) SlowBypasses() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slowBypasses
}

// CorruptBits flips a bit in the first live replica holding id — the
// Table 2 "corrupt data inside SSM" fault, scoped to one brick. The next
// read of the damaged replica discards the copy and falls through to a
// healthy peer.
func (c *SSMCluster) CorruptBits(id string) error {
	for _, b := range c.shards[c.ring.lookup(id)] {
		if b.corruptBits(id) {
			return nil
		}
	}
	return fmt.Errorf("%w: %s", ErrNotFound, id)
}

// DeadBricks lists the names of crashed bricks (recovery polls this the
// way the paper's RM consumes heartbeat-loss reports).
func (c *SSMCluster) DeadBricks() []string {
	var out []string
	for _, shard := range c.shards {
		for _, b := range shard {
			if !b.Up() {
				out = append(out, b.Name())
			}
		}
	}
	return out
}

// CrashBrick kills the named brick, losing its replica state.
func (c *SSMCluster) CrashBrick(name string) error {
	b, err := c.BrickByName(name)
	if err != nil {
		return err
	}
	b.Crash()
	return nil
}

// SetBrickSlow marks the named brick degraded (or heals it).
func (c *SSMCluster) SetBrickSlow(name string, slow bool) error {
	b, err := c.BrickByName(name)
	if err != nil {
		return err
	}
	b.SetSlow(slow)
	return nil
}

// OnBrickRestart registers a callback fired after a brick restart and
// re-replication complete.
func (c *SSMCluster) OnBrickRestart(fn func(*Brick)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onRestart = append(c.onRestart, fn)
}

// RestartBrick reboots a crashed brick and re-replicates its shard into
// it from the surviving replicas (newest lease wins), restoring full
// N-way redundancy. It returns the modeled restart duration so recovery
// managers can account for it on the simulation timeline; the store
// itself is consistent as soon as RestartBrick returns.
func (c *SSMCluster) RestartBrick(name string) (time.Duration, error) {
	b, err := c.BrickByName(name)
	if err != nil {
		return 0, err
	}
	b.Restart()
	merged := map[string]ssmEntry{}
	mergedTombs := map[string]tombstone{}
	for _, peer := range c.shards[b.Shard()] {
		if peer == b || !peer.Up() {
			continue
		}
		entries, tombs := peer.snapshot()
		for id, e := range entries {
			// Never replicate a copy that fails its checksum: merging
			// corrupt data would spread the damage until it could
			// outnumber (and eventually replace) every good copy.
			if crc32.ChecksumIEEE(e.blob) != e.checksum {
				continue
			}
			if cur, ok := merged[id]; !ok || e.version > cur.version ||
				(e.version == cur.version && e.expires > cur.expires) {
				merged[id] = e
			}
		}
		for id, t := range tombs {
			if cur, ok := mergedTombs[id]; !ok || t.version > cur.version {
				mergedTombs[id] = t
			}
		}
	}
	// Tombstones first: the versioned put then refuses any snapshot entry
	// that a concurrent delete has already superseded.
	b.adoptTombs(mergedTombs)
	for id, e := range merged {
		_ = b.put(id, e)
	}
	c.mu.Lock()
	callbacks := make([]func(*Brick), len(c.onRestart))
	copy(callbacks, c.onRestart)
	c.mu.Unlock()
	for _, fn := range callbacks {
		fn(b)
	}
	return BrickRestartTime, nil
}

var _ Store = (*SSMCluster)(nil)
