package session

import (
	"errors"
	"fmt"
	"hash/crc32"
	"testing"
	"time"
)

// mustCluster builds an S×N cluster with write quorum w and the given
// clock (nil for immortal leases).
func mustCluster(t testing.TB, s, n, w int, now func() time.Duration, ttl time.Duration) *SSMCluster {
	t.Helper()
	c, err := NewSSMCluster(ClusterConfig{Shards: s, Replicas: n, WriteQuorum: w, Now: now, LeaseTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSSMClusterBasics(t *testing.T) {
	testStoreBasics(t, mustCluster(t, 4, 3, 2, nil, 0))
}

func TestSSMClusterConfigValidation(t *testing.T) {
	if _, err := NewSSMCluster(ClusterConfig{Replicas: 3, WriteQuorum: 4}); err == nil {
		t.Fatal("W > N should be rejected")
	}
	if _, err := NewSSMCluster(ClusterConfig{Shards: -1}); err == nil {
		t.Fatal("negative shards should be rejected")
	}
	c, err := NewSSMCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := c.Config()
	if cfg.Shards != 4 || cfg.Replicas != 3 || cfg.WriteQuorum != 2 {
		t.Fatalf("defaults = %d×%d W=%d", cfg.Shards, cfg.Replicas, cfg.WriteQuorum)
	}
	if len(c.Bricks()) != 12 {
		t.Fatalf("bricks = %d, want 12", len(c.Bricks()))
	}
}

func TestHashRingSpreadsSessions(t *testing.T) {
	c := mustCluster(t, 4, 1, 1, nil, 0)
	for i := 0; i < 400; i++ {
		if err := c.Write(sampleSession(fmt.Sprintf("sess-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range c.Bricks() {
		if b.Len() == 0 {
			t.Fatalf("shard %d got no sessions — ring badly skewed", b.Shard())
		}
	}
	if c.Len() != 400 {
		t.Fatalf("Len = %d, want 400", c.Len())
	}
}

func TestClusterQuorumOneBrickDown(t *testing.T) {
	c := mustCluster(t, 2, 3, 2, nil, 0)
	for i := 0; i < 40; i++ {
		if err := c.Write(sampleSession(fmt.Sprintf("s%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Crash one replica of every shard: reads and writes must not notice.
	for s := 0; s < 2; s++ {
		if err := c.CrashBrick(fmt.Sprintf("ssm/s%d-r0", s)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if _, err := c.Read(fmt.Sprintf("s%d", i)); err != nil {
			t.Fatalf("read s%d with one brick down: %v", i, err)
		}
	}
	if err := c.Write(sampleSession("fresh")); err != nil {
		t.Fatalf("write with one brick down: %v", err)
	}
	if err := c.Delete("s0"); err != nil {
		t.Fatalf("delete with one brick down: %v", err)
	}
	if _, err := c.Read("s0"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read after delete = %v, want ErrNotFound", err)
	}
}

func TestClusterQuorumLostErrDown(t *testing.T) {
	c := mustCluster(t, 1, 3, 2, nil, 0)
	if err := c.Write(sampleSession("s")); err != nil {
		t.Fatal(err)
	}
	// Two of three replicas down: the write quorum is unreachable.
	for _, name := range []string{"ssm/s0-r0", "ssm/s0-r1"} {
		if err := c.CrashBrick(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Write(sampleSession("t")); !errors.Is(err, ErrDown) {
		t.Fatalf("write with quorum lost = %v, want ErrDown", err)
	}
	if err := c.Delete("s"); !errors.Is(err, ErrDown) {
		t.Fatalf("delete with quorum lost = %v, want ErrDown", err)
	}
	// Read-from-any-live-replica still serves from the last survivor.
	if _, err := c.Read("s"); err != nil {
		t.Fatalf("read from last survivor: %v", err)
	}
	// All three down: every operation reports the store unavailable.
	if err := c.CrashBrick("ssm/s0-r2"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read("s"); !errors.Is(err, ErrDown) {
		t.Fatalf("read with shard dead = %v, want ErrDown", err)
	}
	if err := c.Write(sampleSession("u")); !errors.Is(err, ErrDown) {
		t.Fatalf("write with shard dead = %v, want ErrDown", err)
	}
}

func TestClusterBrickCrashLosesNothingAndRereplicates(t *testing.T) {
	c := mustCluster(t, 4, 3, 2, nil, 0)
	const sessions = 100
	for i := 0; i < sessions; i++ {
		if err := c.Write(sampleSession(fmt.Sprintf("s%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	victim := c.Bricks()[0]
	lost := victim.Crash()
	if lost == 0 {
		t.Fatal("victim brick held nothing — test is vacuous")
	}
	if got := c.DeadBricks(); len(got) != 1 || got[0] != victim.Name() {
		t.Fatalf("DeadBricks = %v", got)
	}
	// Zero session loss: every session still readable from replicas.
	for i := 0; i < sessions; i++ {
		if _, err := c.Read(fmt.Sprintf("s%d", i)); err != nil {
			t.Fatalf("session s%d lost to a single brick crash: %v", i, err)
		}
	}
	var restarted *Brick
	c.OnBrickRestart(func(b *Brick) { restarted = b })
	d, err := c.RestartBrick(victim.Name())
	if err != nil {
		t.Fatal(err)
	}
	if d != BrickRestartTime {
		t.Fatalf("restart duration = %v, want %v", d, BrickRestartTime)
	}
	if restarted != victim {
		t.Fatal("OnBrickRestart callback did not fire for the victim")
	}
	if victim.Len() != lost {
		t.Fatalf("re-replication restored %d entries, want %d", victim.Len(), lost)
	}
	if victim.Restarts() != 1 || !victim.Up() {
		t.Fatalf("lifecycle counters wrong: restarts=%d up=%v", victim.Restarts(), victim.Up())
	}
	if len(c.DeadBricks()) != 0 {
		t.Fatalf("DeadBricks after restart = %v", c.DeadBricks())
	}
}

func TestClusterChecksumCorruptionSelfHeals(t *testing.T) {
	c := mustCluster(t, 1, 3, 2, nil, 0)
	if err := c.Write(sampleSession("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.CorruptBits("v"); err != nil {
		t.Fatal(err)
	}
	// The damaged replica discards its copy; a healthy peer serves the
	// read and read-repair restores full replication.
	got, err := c.Read("v")
	if err != nil {
		t.Fatalf("read after single-replica corruption: %v", err)
	}
	if got.UserID != 42 {
		t.Fatalf("healed read returned %+v", got)
	}
	if c.Discarded() != 1 {
		t.Fatalf("Discarded = %d, want 1", c.Discarded())
	}
	for _, b := range c.Bricks() {
		if b.Len() != 1 {
			t.Fatalf("brick %s not repaired: len=%d", b.Name(), b.Len())
		}
	}
	if err := c.CorruptBits("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("CorruptBits missing = %v", err)
	}
}

func TestClusterAllCopiesCorruptDiscards(t *testing.T) {
	c := mustCluster(t, 1, 2, 2, nil, 0)
	if err := c.Write(sampleSession("v")); err != nil {
		t.Fatal(err)
	}
	for _, b := range c.Bricks() {
		if !b.corruptBits("v") {
			t.Fatal("brick missing the entry")
		}
	}
	if _, err := c.Read("v"); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("read = %v, want ErrCorrupted", err)
	}
	if _, err := c.Read("v"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second read = %v, want ErrNotFound (bad copies discarded)", err)
	}
}

func TestClusterLeaseExpiryAndReap(t *testing.T) {
	var now time.Duration
	c := mustCluster(t, 2, 3, 2, func() time.Duration { return now }, time.Minute)
	_ = c.Write(sampleSession("a"))
	_ = c.Write(sampleSession("b"))
	now = 30 * time.Second
	_ = c.Write(sampleSession("c"))
	// A read renews c's lease across replicas.
	if _, err := c.Read("c"); err != nil {
		t.Fatal(err)
	}
	now = 90 * time.Second
	if n := c.ReapExpired(); n != 2 {
		t.Fatalf("ReapExpired = %d, want 2 (a, b orphaned)", n)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if _, err := c.Read("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read reaped = %v, want ErrNotFound", err)
	}
}

func TestClusterSlowBrickBypass(t *testing.T) {
	c := mustCluster(t, 1, 3, 2, nil, 0)
	if err := c.Write(sampleSession("s")); err != nil {
		t.Fatal(err)
	}
	if err := c.SetBrickSlow("ssm/s0-r0", true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Read("s"); err != nil {
			t.Fatal(err)
		}
	}
	if c.SlowBypasses() != 5 {
		t.Fatalf("SlowBypasses = %d, want 5", c.SlowBypasses())
	}
	// A slow brick is still the reader of last resort.
	_ = c.CrashBrick("ssm/s0-r1")
	_ = c.CrashBrick("ssm/s0-r2")
	if _, err := c.Read("s"); err != nil {
		t.Fatalf("read from slow last resort: %v", err)
	}
}

func TestStaleRepairCannotUndoNewerWrite(t *testing.T) {
	// Regression: read-repair used to writeback the entry it served onto
	// every replica unconditionally, so a read racing a newer Write could
	// overwrite the new value cluster-wide with the old one.
	c := mustCluster(t, 1, 3, 2, nil, 0)
	old := sampleSession("x")
	if err := c.Write(old); err != nil {
		t.Fatal(err)
	}
	// Capture the v1 entry as a racing reader would have.
	staleEntries, _ := c.Bricks()[0].snapshot()
	stale := staleEntries["x"]
	// A newer write lands on all replicas.
	updated := sampleSession("x")
	updated.UserID = 99
	if err := c.Write(updated); err != nil {
		t.Fatal(err)
	}
	// The racing reader's repair writeback replays the stale entry.
	for _, b := range c.Bricks() {
		_ = b.put("x", stale)
	}
	got, err := c.Read("x")
	if err != nil {
		t.Fatal(err)
	}
	if got.UserID != 99 {
		t.Fatalf("stale repair undid a newer write: UserID = %d, want 99", got.UserID)
	}
}

func TestTombstoneBlocksResurrectionAfterDelete(t *testing.T) {
	// Regression: a stale repair (or re-replication snapshot) replayed
	// after a Delete used to resurrect the logged-out session.
	c := mustCluster(t, 1, 3, 2, nil, 0)
	if err := c.Write(sampleSession("x")); err != nil {
		t.Fatal(err)
	}
	staleEntries, _ := c.Bricks()[0].snapshot()
	stale := staleEntries["x"]
	if err := c.Delete("x"); err != nil {
		t.Fatal(err)
	}
	for _, b := range c.Bricks() {
		_ = b.put("x", stale)
	}
	if _, err := c.Read("x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted session resurrected by stale repair: %v", err)
	}
}

func TestRestartMergesTombstones(t *testing.T) {
	// A brick restarted after a delete must inherit the tombstone, or
	// late stale data could resurrect the session on that replica only.
	c := mustCluster(t, 1, 3, 2, nil, 0)
	if err := c.Write(sampleSession("x")); err != nil {
		t.Fatal(err)
	}
	staleEntries, _ := c.Bricks()[0].snapshot()
	stale := staleEntries["x"]
	victim := c.Bricks()[0]
	victim.Crash()
	if err := c.Delete("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RestartBrick(victim.Name()); err != nil {
		t.Fatal(err)
	}
	// Replay stale data onto the restarted brick: the merged tombstone
	// must reject it.
	_ = victim.put("x", stale)
	if n := victim.Len(); n != 0 {
		t.Fatalf("restarted brick accepted stale deleted entry (len=%d)", n)
	}
	if _, err := c.Read("x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read after delete = %v, want ErrNotFound", err)
	}
}

func TestRestartDoesNotReplicateCorruptCopies(t *testing.T) {
	// Regression: re-replication used to copy entries without verifying
	// their checksums, so a corrupt replica copy could spread until it
	// outnumbered every good one.
	c := mustCluster(t, 1, 3, 2, nil, 0)
	if err := c.Write(sampleSession("x")); err != nil {
		t.Fatal(err)
	}
	bricks := c.Bricks()
	// Corrupt the first replica's copy (CorruptBits picks the first live
	// holder) and crash the third.
	if err := c.CorruptBits("x"); err != nil {
		t.Fatal(err)
	}
	bricks[2].Crash()
	if _, err := c.RestartBrick(bricks[2].Name()); err != nil {
		t.Fatal(err)
	}
	// The restarted brick must hold the good copy from bricks[1], not the
	// corrupt one from bricks[0].
	entries, _ := bricks[2].snapshot()
	e, ok := entries["x"]
	if !ok {
		t.Fatal("re-replication skipped the session entirely")
	}
	if crc32.ChecksumIEEE(e.blob) != e.checksum {
		t.Fatal("re-replication propagated a corrupt copy")
	}
	if _, err := c.Read("x"); err != nil {
		t.Fatalf("read after restart: %v", err)
	}
}

func TestReapCleansTombstones(t *testing.T) {
	var now time.Duration
	c := mustCluster(t, 1, 2, 2, func() time.Duration { return now }, time.Minute)
	_ = c.Write(sampleSession("x"))
	_ = c.Delete("x")
	b := c.Bricks()[0]
	b.mu.Lock()
	tombs := len(b.tombs)
	b.mu.Unlock()
	if tombs != 1 {
		t.Fatalf("tombstones = %d, want 1", tombs)
	}
	now = 2 * time.Minute
	c.ReapExpired()
	b.mu.Lock()
	tombs = len(b.tombs)
	b.mu.Unlock()
	if tombs != 0 {
		t.Fatalf("tombstones after reap = %d, want 0", tombs)
	}
}

func TestFastSStripesConfigurable(t *testing.T) {
	f := NewFastSStripes(0)
	if f.Stripes() != 1 {
		t.Fatalf("stripes = %d, want 1", f.Stripes())
	}
	if NewFastS().Stripes() != DefaultStripes {
		t.Fatalf("default stripes = %d, want %d", NewFastS().Stripes(), DefaultStripes)
	}
	for i := 0; i < 100; i++ {
		_ = f.Write(sampleSession(fmt.Sprintf("s%d", i)))
	}
	if f.Len() != 100 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestSlowRoutingDisabledServesFromSlowBrick(t *testing.T) {
	c := mustCluster(t, 1, 3, 2, nil, 0)
	if err := c.Write(sampleSession("s")); err != nil {
		t.Fatal(err)
	}
	if err := c.SetBrickSlow("ssm/s0-r0", true); err != nil {
		t.Fatal(err)
	}
	if !c.SlowReadRouting() {
		t.Fatal("routing should default on")
	}
	c.SetSlowReadRouting(false)
	for i := 0; i < 4; i++ {
		if _, err := c.Read("s"); err != nil {
			t.Fatal(err)
		}
	}
	// Natural order starts at the slow replica 0: every read stutters.
	if c.SlowServedReads() != 4 {
		t.Fatalf("SlowServedReads = %d, want 4", c.SlowServedReads())
	}
	if c.SlowBypasses() != 0 {
		t.Fatalf("SlowBypasses = %d, want 0 with routing off", c.SlowBypasses())
	}
	c.SetSlowReadRouting(true)
	if _, err := c.Read("s"); err != nil {
		t.Fatal(err)
	}
	if c.SlowServedReads() != 4 || c.SlowBypasses() != 1 {
		t.Fatalf("after re-enabling: served=%d bypasses=%d, want 4/1",
			c.SlowServedReads(), c.SlowBypasses())
	}
}

func TestReadPenaltyFollowsRoutingPolicy(t *testing.T) {
	c := mustCluster(t, 1, 3, 2, nil, 0)
	if err := c.Write(sampleSession("s")); err != nil {
		t.Fatal(err)
	}
	if got := c.ReadPenalty("s"); got != 0 {
		t.Fatalf("healthy penalty = %v, want 0", got)
	}
	// One slow replica: routing masks it entirely.
	_ = c.SetBrickSlow("ssm/s0-r0", true)
	if got := c.ReadPenalty("s"); got != 0 {
		t.Fatalf("routed penalty = %v, want 0", got)
	}
	// Routing off: the natural first replica is the slow one.
	c.SetSlowReadRouting(false)
	if got := c.ReadPenalty("s"); got != SlowBrickPenalty {
		t.Fatalf("unrouted penalty = %v, want %v", got, SlowBrickPenalty)
	}
	// With the slow brick second in natural order, no penalty either way.
	_ = c.SetBrickSlow("ssm/s0-r0", false)
	_ = c.SetBrickSlow("ssm/s0-r1", true)
	if got := c.ReadPenalty("s"); got != 0 {
		t.Fatalf("unrouted penalty behind healthy head = %v, want 0", got)
	}
	// Every live replica slow: even routing has to wait.
	c.SetSlowReadRouting(true)
	_ = c.SetBrickSlow("ssm/s0-r0", true)
	_ = c.SetBrickSlow("ssm/s0-r2", true)
	if got := c.ReadPenalty("s"); got != SlowBrickPenalty {
		t.Fatalf("all-slow penalty = %v, want %v", got, SlowBrickPenalty)
	}
}

func TestShardPopulationsSumToDistinctSessions(t *testing.T) {
	c := mustCluster(t, 4, 3, 2, nil, 0)
	for i := 0; i < 60; i++ {
		if err := c.Write(sampleSession(fmt.Sprintf("sess-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	pops := c.ShardPopulations()
	if len(pops) != 4 {
		t.Fatalf("shards = %d, want 4", len(pops))
	}
	total := 0
	for sid, n := range pops {
		if n == 0 {
			t.Errorf("shard %d empty — ring not spreading", sid)
		}
		total += n
	}
	if total != c.Len() {
		t.Fatalf("population sum = %d, want Len = %d", total, c.Len())
	}
	// A crashed replica must not undercount the shard: survivors hold it.
	_ = c.CrashBrick("ssm/s0-r0")
	if got := c.ShardPopulations(); got[0] != pops[0] {
		t.Fatalf("shard 0 after crash = %d, want %d", got[0], pops[0])
	}
}
