package session

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// writeN writes n sessions "s0".."s<n-1>" and returns their ids.
func writeN(t testing.TB, c *SSMCluster, n int) []string {
	t.Helper()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("s%d", i)
		if err := c.Write(sampleSession(id)); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return ids
}

// misplaced counts live entries sitting on a brick that is not their
// current-ring owner — zero once a migration has converged.
func misplaced(c *SSMCluster) int {
	n := 0
	for _, b := range c.Bricks() {
		for _, id := range b.ids() {
			if c.ShardFor(id) != b.Shard() {
				n++
			}
		}
	}
	return n
}

func TestAddShardMigratesAndConverges(t *testing.T) {
	c := mustCluster(t, 4, 3, 2, nil, 0)
	ids := writeN(t, c, 200)
	if v := c.RingVersion(); v != 1 {
		t.Fatalf("ring version = %d, want 1", v)
	}

	shard, err := c.AddShard()
	if err != nil {
		t.Fatal(err)
	}
	if shard != 4 {
		t.Fatalf("new shard id = %d, want 4", shard)
	}
	if v := c.RingVersion(); v != 2 {
		t.Fatalf("ring version = %d, want 2", v)
	}
	if !c.Migrating() {
		t.Fatal("AddShard did not start a migration")
	}
	if len(c.Bricks()) != 15 {
		t.Fatalf("bricks = %d, want 15", len(c.Bricks()))
	}

	// Before any migration, every session is still readable (dual-read).
	for _, id := range ids {
		if _, err := c.Read(id); err != nil {
			t.Fatalf("read %s mid-resize: %v", id, err)
		}
	}

	moved, done := c.MigrateAll()
	if !done {
		t.Fatal("migration did not converge")
	}
	if moved == 0 {
		t.Fatal("no entries migrated to the new shard — ring change vacuous")
	}
	if c.Migrating() {
		t.Fatal("Migrating() still true after convergence")
	}
	if got := c.MigratedEntries(); got < moved {
		t.Fatalf("MigratedEntries = %d, want ≥ %d", got, moved)
	}
	if n := misplaced(c); n != 0 {
		t.Fatalf("%d entries still on non-owner shards", n)
	}
	// The new shard actually took ownership of part of the key space.
	held := 0
	for _, b := range c.Bricks() {
		if b.Shard() == shard {
			held += b.Len()
		}
	}
	if held == 0 {
		t.Fatal("new shard holds nothing after migration")
	}
	if c.Len() != 200 {
		t.Fatalf("Len = %d, want 200", c.Len())
	}
	for _, id := range ids {
		if _, err := c.Read(id); err != nil {
			t.Fatalf("read %s after migration: %v", id, err)
		}
	}
}

func TestRemoveShardDrainsAndRetires(t *testing.T) {
	c := mustCluster(t, 4, 3, 2, nil, 0)
	ids := writeN(t, c, 200)

	if err := c.RemoveShard(0); err != nil {
		t.Fatal(err)
	}
	if got := c.Elastic().Retiring; got != 0 {
		t.Fatalf("retiring = %d, want shard 0", got)
	}
	// Mid-drain: everything readable, writes land off the retiring shard.
	for _, id := range ids {
		if _, err := c.Read(id); err != nil {
			t.Fatalf("read %s mid-drain: %v", id, err)
		}
	}
	if err := c.Write(sampleSession("fresh")); err != nil {
		t.Fatal(err)
	}
	if s := c.ShardFor("fresh"); s == 0 {
		t.Fatal("write landed on the retiring shard")
	}

	moved, done := c.MigrateAll()
	if !done || moved == 0 {
		t.Fatalf("drain moved=%d done=%v", moved, done)
	}
	if got := c.ShardIDs(); len(got) != 3 || got[0] != 1 {
		t.Fatalf("ShardIDs = %v, want [1 2 3]", got)
	}
	if len(c.Bricks()) != 9 {
		t.Fatalf("bricks = %d, want 9", len(c.Bricks()))
	}
	retired := c.RetiredBricks()
	if len(retired) != 3 {
		t.Fatalf("retired bricks = %d, want 3", len(retired))
	}
	for _, b := range retired {
		if !b.Retired() || b.Up() || b.Len() != 0 {
			t.Fatalf("retired brick %s: retired=%v up=%v len=%d", b.Name(), b.Retired(), b.Up(), b.Len())
		}
		if _, err := c.BrickByName(b.Name()); err == nil {
			t.Fatalf("retired brick %s still resolvable", b.Name())
		}
	}
	if got := c.DeadBricks(); len(got) != 0 {
		t.Fatalf("DeadBricks lists retired bricks: %v", got)
	}
	if c.Len() != 201 {
		t.Fatalf("Len = %d, want 201", c.Len())
	}
	for _, id := range append(ids, "fresh") {
		if _, err := c.Read(id); err != nil {
			t.Fatalf("read %s after drain: %v", id, err)
		}
	}
	// A restart of a retired brick must not resurrect the shard.
	if _, err := c.RestartBrick("ssm/s0-r0"); err == nil {
		t.Fatal("RestartBrick resurrected a retired brick")
	}
}

func TestOneRingChangeAtATime(t *testing.T) {
	c := mustCluster(t, 2, 3, 2, nil, 0)
	writeN(t, c, 50)
	if _, err := c.AddShard(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddShard(); !errors.Is(err, ErrResizing) {
		t.Fatalf("second AddShard = %v, want ErrResizing", err)
	}
	if err := c.RemoveShard(0); !errors.Is(err, ErrResizing) {
		t.Fatalf("RemoveShard mid-migration = %v, want ErrResizing", err)
	}
	if _, done := c.MigrateAll(); !done {
		t.Fatal("migration did not converge")
	}
	if err := c.RemoveShard(99); err == nil {
		t.Fatal("removing an unknown shard should fail")
	}
	c2 := mustCluster(t, 1, 3, 2, nil, 0)
	if err := c2.RemoveShard(0); err == nil {
		t.Fatal("removing the last shard should fail")
	}
}

func TestDualReadPromotesOntoNewOwner(t *testing.T) {
	c := mustCluster(t, 4, 3, 2, nil, 0)
	ids := writeN(t, c, 200)
	shard, err := c.AddShard()
	if err != nil {
		t.Fatal(err)
	}
	// Find a session the new ring assigns to the new shard; no migration
	// has run, so its data still lives with the old owner.
	var movedID string
	for _, id := range ids {
		if c.ShardFor(id) == shard {
			movedID = id
			break
		}
	}
	if movedID == "" {
		t.Fatal("no session moved to the new shard — ring change vacuous")
	}
	if _, err := c.Read(movedID); err != nil {
		t.Fatalf("dual-read fallback failed: %v", err)
	}
	// The fallback promoted the entry onto the new owner's replicas.
	held := 0
	for _, b := range c.Bricks() {
		if b.Shard() == shard {
			if _, err := b.get(movedID, 0); err == nil {
				held++
			}
		}
	}
	if held != 3 {
		t.Fatalf("promotion reached %d/3 new-owner replicas", held)
	}
}

func TestDeleteDuringMigrationStaysDeleted(t *testing.T) {
	c := mustCluster(t, 4, 3, 2, nil, 0)
	ids := writeN(t, c, 200)
	shard, err := c.AddShard()
	if err != nil {
		t.Fatal(err)
	}
	var movedID string
	for _, id := range ids {
		if c.ShardFor(id) == shard {
			movedID = id
			break
		}
	}
	if movedID == "" {
		t.Fatal("no session moved to the new shard")
	}
	// Delete mid-migration: the tombstone must land on both owners, or
	// the sweep would re-copy the old owner's entry afterward.
	if err := c.Delete(movedID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(movedID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read after delete = %v, want ErrNotFound", err)
	}
	if _, done := c.MigrateAll(); !done {
		t.Fatal("migration did not converge")
	}
	if _, err := c.Read(movedID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("migration resurrected a deleted session: %v", err)
	}
}

func TestMigrationCannotUndoNewerWrite(t *testing.T) {
	c := mustCluster(t, 4, 3, 2, nil, 0)
	ids := writeN(t, c, 200)
	shard, err := c.AddShard()
	if err != nil {
		t.Fatal(err)
	}
	var movedID string
	for _, id := range ids {
		if c.ShardFor(id) == shard {
			movedID = id
			break
		}
	}
	if movedID == "" {
		t.Fatal("no session moved to the new shard")
	}
	// Rewrite the session mid-migration: the write lands on the new
	// owner; the stale copy still sits with the old owner.
	updated := sampleSession(movedID)
	updated.UserID = 99
	if err := c.Write(updated); err != nil {
		t.Fatal(err)
	}
	if _, done := c.MigrateAll(); !done {
		t.Fatal("migration did not converge")
	}
	got, err := c.Read(movedID)
	if err != nil {
		t.Fatal(err)
	}
	if got.UserID != 99 {
		t.Fatalf("migration undid a newer write: UserID = %d, want 99", got.UserID)
	}
}

func TestCrashDuringMigrationStillConverges(t *testing.T) {
	c := mustCluster(t, 4, 3, 2, nil, 0)
	ids := writeN(t, c, 300)
	shard, err := c.AddShard()
	if err != nil {
		t.Fatal(err)
	}
	// Migrate a little, then crash one replica of the destination shard
	// mid-stream.
	if _, done := c.MigrateStep(20); done {
		t.Fatal("migration finished in one small step — not mid-stream")
	}
	var victim *Brick
	for _, b := range c.Bricks() {
		if b.Shard() == shard {
			victim = b
			break
		}
	}
	victim.Crash()
	// The drain keeps going: W=2 of the 2 surviving destination replicas
	// still acks every copy.
	if _, done := c.MigrateAll(); !done {
		t.Fatal("migration stalled with one destination replica down")
	}
	for _, id := range ids {
		if _, err := c.Read(id); err != nil {
			t.Fatalf("session %s lost to crash-during-migration: %v", id, err)
		}
	}
	// Restart re-replicates the crashed brick from its shard peers.
	if _, err := c.RestartBrick(victim.Name()); err != nil {
		t.Fatal(err)
	}
	if victim.Len() == 0 {
		t.Fatal("restarted destination brick re-replicated nothing")
	}
	if n := misplaced(c); n != 0 {
		t.Fatalf("%d entries misplaced after restart", n)
	}
}

func TestMigrationStallsWithoutDestinationQuorumThenRecovers(t *testing.T) {
	c := mustCluster(t, 2, 3, 2, nil, 0)
	ids := writeN(t, c, 100)
	shard, err := c.AddShard()
	if err != nil {
		t.Fatal(err)
	}
	// Kill the whole destination shard: the drain must hold the data on
	// the old owners rather than forget the only durable copies.
	var dst []*Brick
	for _, b := range c.Bricks() {
		if b.Shard() == shard {
			dst = append(dst, b)
		}
	}
	for _, b := range dst {
		b.Crash()
	}
	if moved, done := c.MigrateAll(); done || moved != 0 {
		t.Fatalf("migration moved=%d done=%v with destination shard dead", moved, done)
	}
	for _, id := range ids {
		if _, err := c.Read(id); err != nil {
			t.Fatalf("read %s while migration stalled: %v", id, err)
		}
	}
	for _, b := range dst {
		if _, err := c.RestartBrick(b.Name()); err != nil {
			t.Fatal(err)
		}
	}
	if _, done := c.MigrateAll(); !done {
		t.Fatal("migration did not resume after destination shard recovered")
	}
	if n := misplaced(c); n != 0 {
		t.Fatalf("%d entries misplaced after recovery", n)
	}
}

func TestReadNeverMissesDuringMigration(t *testing.T) {
	// Regression: dual-read used to race the migrator — miss the new
	// owner, the entry moves (copy + forget), miss the old owner — and
	// report a live session as ErrNotFound. The fix re-checks the new
	// owner once on an old-owner miss; this hammers reads across five
	// grow/shrink cycles to shake the interleaving out.
	c := mustCluster(t, 4, 3, 2, nil, 0)
	ids := writeN(t, c, 100)
	stop := make(chan struct{})
	errCh := make(chan error, 1)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[(i*7+w)%len(ids)]
				if _, err := c.Read(id); err != nil {
					select {
					case errCh <- fmt.Errorf("read %s during migration: %w", id, err):
					default:
					}
					return
				}
			}
		}(w)
	}
	for cycle := 0; cycle < 5; cycle++ {
		shard, err := c.AddShard()
		if err != nil {
			t.Fatal(err)
		}
		for done := false; !done; {
			_, done = c.MigrateStep(16)
		}
		if err := c.RemoveShard(shard); err != nil {
			t.Fatal(err)
		}
		for done := false; !done; {
			_, done = c.MigrateStep(16)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

func TestMigrationCannotShortenRenewedLease(t *testing.T) {
	// Regression: lease renewal extends expires without bumping the entry
	// version, and Brick.put used to let an equal-version put overwrite —
	// so a migration copy carrying the old owner's un-renewed expiry
	// clobbered a renewed lease on the new owner and the session expired
	// early.
	var now time.Duration
	c := mustCluster(t, 4, 3, 2, func() time.Duration { return now }, time.Minute)
	ids := writeN(t, c, 100)
	shard, err := c.AddShard()
	if err != nil {
		t.Fatal(err)
	}
	var movedID string
	for _, id := range ids {
		if c.ShardFor(id) == shard {
			movedID = id
			break
		}
	}
	if movedID == "" {
		t.Fatal("no session moved to the new shard")
	}
	// Promote onto the new owner via dual-read, then renew there at 30s.
	if _, err := c.Read(movedID); err != nil {
		t.Fatal(err)
	}
	now = 30 * time.Second
	if _, err := c.Read(movedID); err != nil {
		t.Fatal(err)
	}
	if c.RenewalWrites() == 0 {
		t.Fatal("read at 50% TTL did not renew — test is vacuous")
	}
	// The migrator copies the old owner's un-renewed entry (expires=60s);
	// it must not shorten the renewed lease (expires=90s).
	if _, done := c.MigrateAll(); !done {
		t.Fatal("migration did not converge")
	}
	now = 70 * time.Second
	if _, err := c.Read(movedID); err != nil {
		t.Fatalf("renewed session expired early after migration: %v", err)
	}
}

func TestMigrateAllSkipsDeletedWorklistEntriesWithoutStalling(t *testing.T) {
	// Regression: MigrateAll's stall heuristic treated steps that only
	// skipped already-deleted worklist ids as a quorum stall and gave up
	// on a migration that was in fact converging.
	c := mustCluster(t, 4, 3, 2, nil, 0)
	ids := writeN(t, c, 600)
	if _, err := c.AddShard(); err != nil {
		t.Fatal(err)
	}
	// Seed the worklist, then delete far more than two step budgets'
	// worth of queued sessions out from under it.
	if _, done := c.MigrateStep(1); done {
		t.Fatal("migration finished in one entry")
	}
	for _, id := range ids[:550] {
		if err := c.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, done := c.MigrateAll(); !done {
		t.Fatal("MigrateAll reported a stall while skipping deleted entries")
	}
	if n := misplaced(c); n != 0 {
		t.Fatalf("%d entries misplaced after convergence", n)
	}
}

func TestDeferredLeaseRenewalCounts(t *testing.T) {
	var now time.Duration
	c := mustCluster(t, 1, 3, 2, func() time.Duration { return now }, time.Minute)
	if err := c.Write(sampleSession("s")); err != nil {
		t.Fatal(err)
	}
	// Fresh lease: reads must not renew (writes would amplify 3×).
	for i := 0; i < 5; i++ {
		if _, err := c.Read("s"); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.RenewalWrites(); got != 0 {
		t.Fatalf("renewal writes on fresh lease = %d, want 0", got)
	}
	// Past a quarter of the TTL the next read renews on every replica…
	now = 16 * time.Second
	if _, err := c.Read("s"); err != nil {
		t.Fatal(err)
	}
	if got := c.RenewalWrites(); got != 3 {
		t.Fatalf("renewal writes after 25%% TTL = %d, want 3", got)
	}
	// …and the renewed lease suppresses the rounds that follow.
	for i := 0; i < 5; i++ {
		if _, err := c.Read("s"); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.RenewalWrites(); got != 3 {
		t.Fatalf("renewal writes after renewal = %d, want still 3", got)
	}
	// The deferred policy still keeps an active session alive forever.
	for i := 0; i < 10; i++ {
		now += 45 * time.Second
		if _, err := c.Read("s"); err != nil {
			t.Fatalf("active session expired under deferred renewal at %v: %v", now, err)
		}
	}
}
