// Package session implements the dedicated session-state stores of the
// paper's crash-only architecture.
//
// eBid keeps session state (selected items, userID, workflow state) out of
// the application components, so that microreboots cannot lose or corrupt
// it. Two stores are provided, mirroring the prototype:
//
//   - FastS: an in-process repository (the paper built it inside JBoss's
//     embedded web server). Isolated behind compiler-enforced barriers, it
//     is fast, survives microreboots, but is lost on a process restart.
//     Internally it is striped — one lock per stripe — so concurrent
//     readers on different sessions never contend on a single mutex.
//   - SSM: a clustered session-state store on separate machines (Ling et
//     al., NSDI'04), lease-based and checksummed. Slower (marshalling +
//     network), but survives µRBs, process restarts, and node reboots;
//     corrupted objects are detected via checksum and discarded
//     automatically; orphaned state is garbage-collected when its lease
//     expires.
//   - SSMCluster (cluster.go): the full brick architecture of Ling's SSM —
//     S consistent-hash shards × N replica Bricks with write-W-of-N and
//     read-from-any-live-replica quorum, so session state survives brick
//     (node) crashes, not just process restarts.
//
// All implement the Store interface so the application is oblivious to
// which one backs it — the property that makes recovery decoupling work.
package session

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"time"
)

// Session is an HttpSession analog: the unit of atomic read/write.
type Session struct {
	ID      string
	UserID  int64
	Data    map[string]string
	Items   []int64 // items selected for bid/buy/sell
	Created time.Duration
}

// Clone returns a deep copy, so callers can never alias store internals.
func (s *Session) Clone() *Session {
	if s == nil {
		return nil
	}
	c := &Session{ID: s.ID, UserID: s.UserID, Created: s.Created}
	if s.Data != nil {
		c.Data = make(map[string]string, len(s.Data))
		for k, v := range s.Data {
			c.Data[k] = v
		}
	}
	if s.Items != nil {
		c.Items = append([]int64(nil), s.Items...)
	}
	return c
}

// Errors returned by session stores.
var (
	ErrNotFound  = errors.New("session: not found")
	ErrCorrupted = errors.New("session: object failed checksum and was discarded")
	ErrDown      = errors.New("session: store unavailable")
)

// Store is the high-level API behind which session state is safeguarded.
// Reads and writes are atomic at Session granularity.
type Store interface {
	// Read returns a copy of the session or ErrNotFound.
	Read(id string) (*Session, error)
	// Write stores a copy of the session atomically.
	Write(s *Session) error
	// Delete removes the session; deleting a missing session is a no-op.
	Delete(id string) error
	// Len reports how many sessions are stored.
	Len() int
	// SurvivesProcessRestart distinguishes FastS (false) from SSM (true).
	SurvivesProcessRestart() bool
	// Name identifies the store in experiment output ("FastS" or "SSM").
	Name() string
}

// ReadPenalized is implemented by stores whose reads can carry a modeled
// extra latency (the SSM brick cluster's fail-stutter replicas). Service
// -time models ask it how much a session access of id costs beyond the
// flat store-access charge.
type ReadPenalized interface {
	ReadPenalty(id string) time.Duration
}

// DefaultStripes is the stripe count used by NewFastS. Sixteen stripes
// keep lock contention negligible for the worker counts the node model
// uses while costing only a few hundred bytes of overhead.
const DefaultStripes = 16

// fastStripe is one lock-protected shard of FastS.
type fastStripe struct {
	mu       sync.RWMutex
	sessions map[string]*Session
}

// FastS is the in-process store, striped so concurrent readers of
// different sessions do not serialize on one lock. The zero value is not
// usable; use NewFastS.
type FastS struct {
	stripes []*fastStripe
}

// NewFastS returns an empty in-process session store with DefaultStripes
// stripes.
func NewFastS() *FastS { return NewFastSStripes(DefaultStripes) }

// NewFastSStripes returns an empty store with n lock stripes (n < 1 is
// treated as 1).
func NewFastSStripes(n int) *FastS {
	if n < 1 {
		n = 1
	}
	f := &FastS{stripes: make([]*fastStripe, n)}
	for i := range f.stripes {
		f.stripes[i] = &fastStripe{sessions: map[string]*Session{}}
	}
	return f
}

// stripe maps a session id onto its lock stripe. Inline FNV-1a: hashing
// must not allocate (a []byte conversion would), since it runs on every
// store operation.
func (f *FastS) stripe(id string) *fastStripe {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return f.stripes[h%uint32(len(f.stripes))]
}

// Name implements Store.
func (f *FastS) Name() string { return "FastS" }

// SurvivesProcessRestart implements Store: FastS lives inside the process.
func (f *FastS) SurvivesProcessRestart() bool { return false }

// Stripes reports the stripe count (diagnostic aid).
func (f *FastS) Stripes() int { return len(f.stripes) }

// Read implements Store.
func (f *FastS) Read(id string) (*Session, error) {
	st := f.stripe(id)
	st.mu.RLock()
	defer st.mu.RUnlock()
	s, ok := st.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return s.Clone(), nil
}

// Write implements Store.
func (f *FastS) Write(s *Session) error {
	if s == nil || s.ID == "" {
		return errors.New("session: Write requires a session with an ID")
	}
	st := f.stripe(s.ID)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sessions[s.ID] = s.Clone()
	return nil
}

// Delete implements Store.
func (f *FastS) Delete(id string) error {
	st := f.stripe(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.sessions, id)
	return nil
}

// Len implements Store.
func (f *FastS) Len() int {
	n := 0
	for _, st := range f.stripes {
		st.mu.RLock()
		n += len(st.sessions)
		st.mu.RUnlock()
	}
	return n
}

// LoseAll simulates the process restart that destroys FastS contents —
// the cause of the post-recovery failures in Figure 1's process-restart
// run. It returns how many sessions were lost.
func (f *FastS) LoseAll() int {
	n := 0
	for _, st := range f.stripes {
		st.mu.Lock()
		n += len(st.sessions)
		st.sessions = map[string]*Session{}
		st.mu.Unlock()
	}
	return n
}

// Corrupt overwrites fields of a stored session in place, bypassing the
// atomic API — the "corrupt data inside FastS" faults of Table 2. mode is
// one of "null", "invalid", "wrong". It returns an error if the session
// does not exist.
func (f *FastS) Corrupt(id, mode string) error {
	st := f.stripe(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.sessions[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	switch mode {
	case "null":
		s.Data = nil
		s.UserID = 0
	case "invalid":
		s.UserID = -1 // no valid user has a negative ID
	case "wrong":
		s.UserID++ // valid-looking but belongs to someone else
	default:
		return fmt.Errorf("session: unknown corruption mode %q", mode)
	}
	return nil
}

// IDs returns the stored session ids in sorted order (test/diagnostic aid).
func (f *FastS) IDs() []string {
	var ids []string
	for _, st := range f.stripes {
		st.mu.RLock()
		for id := range st.sessions {
			ids = append(ids, id)
		}
		st.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

// ssmEntry is a marshalled session plus its integrity and lease metadata.
type ssmEntry struct {
	blob     []byte
	checksum uint32
	expires  time.Duration
	// version orders writes and deletes cluster-wide (SSMCluster stamps
	// it from a monotonic counter; the single-node SSM leaves it 0). A
	// replica never lets an older version overwrite a newer one, so a
	// stale read-repair cannot undo a concurrent write.
	version uint64
}

// SSM is the clustered, lease-based store. Entries are stored marshalled
// (the paper pays marshalling + network cost for the physical isolation;
// our cost model charges it in internal/ebid). The store survives process
// restarts by construction — it models state on separate machines.
type SSM struct {
	mu      sync.Mutex
	entries map[string]ssmEntry
	// now supplies virtual time for lease accounting.
	now func() time.Duration
	// leaseTTL is how long a written session stays alive without renewal.
	leaseTTL time.Duration
	down     bool
	// discarded counts checksum failures (auto-discarded objects).
	discarded int
}

// DefaultLeaseTTL is the session lease used when none is specified; the
// paper's session model discards state at logout or session timeout.
const DefaultLeaseTTL = 30 * time.Minute

// NewSSM returns a store whose lease clock is driven by now. A nil now
// makes every lease effectively immortal (useful for unit tests).
func NewSSM(now func() time.Duration, leaseTTL time.Duration) *SSM {
	if leaseTTL <= 0 {
		leaseTTL = DefaultLeaseTTL
	}
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &SSM{entries: map[string]ssmEntry{}, now: now, leaseTTL: leaseTTL}
}

// Name implements Store.
func (m *SSM) Name() string { return "SSM" }

// SurvivesProcessRestart implements Store: SSM state lives off-node.
func (m *SSM) SurvivesProcessRestart() bool { return true }

func marshalSession(s *Session) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("session: marshal: %w", err)
	}
	return buf.Bytes(), nil
}

func unmarshalSession(b []byte) (*Session, error) {
	var s Session
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&s); err != nil {
		return nil, fmt.Errorf("session: unmarshal: %w", err)
	}
	return &s, nil
}

// Write implements Store; it marshals the session, checksums the blob and
// (re)starts its lease.
func (m *SSM) Write(s *Session) error {
	if s == nil || s.ID == "" {
		return errors.New("session: Write requires a session with an ID")
	}
	blob, err := marshalSession(s)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return ErrDown
	}
	m.entries[s.ID] = ssmEntry{
		blob:     blob,
		checksum: crc32.ChecksumIEEE(blob),
		expires:  m.now() + m.leaseTTL,
	}
	return nil
}

// Read implements Store. A checksum mismatch discards the object and
// returns ErrCorrupted — the self-protection noted in Table 2: "corruption
// detected via checksum; bad object automatically discarded".
func (m *SSM) Read(id string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return nil, ErrDown
	}
	e, ok := m.entries[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if e.expires < m.now() {
		delete(m.entries, id)
		return nil, fmt.Errorf("%w: %s (lease expired)", ErrNotFound, id)
	}
	if crc32.ChecksumIEEE(e.blob) != e.checksum {
		delete(m.entries, id)
		m.discarded++
		return nil, fmt.Errorf("%w: %s", ErrCorrupted, id)
	}
	// Renew the lease on access.
	e.expires = m.now() + m.leaseTTL
	m.entries[id] = e
	return unmarshalSession(e.blob)
}

// Delete implements Store.
func (m *SSM) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return ErrDown
	}
	delete(m.entries, id)
	return nil
}

// Len implements Store. Expired entries still awaiting garbage collection
// are counted.
func (m *SSM) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// ReapExpired removes sessions whose leases have lapsed and returns how
// many were collected.
func (m *SSM) ReapExpired() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	n := 0
	for id, e := range m.entries {
		if e.expires < now {
			delete(m.entries, id)
			n++
		}
	}
	return n
}

// CorruptBits flips a bit in the stored blob for id — the "corrupt data
// inside SSM (via bit flips)" fault of Table 2.
func (m *SSM) CorruptBits(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if len(e.blob) == 0 {
		return errors.New("session: empty blob")
	}
	blob := append([]byte(nil), e.blob...)
	blob[len(blob)/2] ^= 0x10
	e.blob = blob // checksum left stale: mismatch now detectable
	m.entries[id] = e
	return nil
}

// Discarded reports how many corrupted objects the store has discarded.
func (m *SSM) Discarded() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.discarded
}

// SetDown marks the store unreachable (for failure-injection tests).
func (m *SSM) SetDown(down bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.down = down
}

// Compile-time interface checks.
var (
	_ Store = (*FastS)(nil)
	_ Store = (*SSM)(nil)
)
