package session

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func sampleSession(id string) *Session {
	return &Session{
		ID:     id,
		UserID: 42,
		Data:   map[string]string{"cart": "open", "step": "2"},
		Items:  []int64{7, 9},
	}
}

func testStoreBasics(t *testing.T, s Store) {
	t.Helper()
	if _, err := s.Read("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("%s: Read missing err = %v, want ErrNotFound", s.Name(), err)
	}
	sess := sampleSession("s1")
	if err := s.Write(sess); err != nil {
		t.Fatalf("%s: Write: %v", s.Name(), err)
	}
	got, err := s.Read("s1")
	if err != nil {
		t.Fatalf("%s: Read: %v", s.Name(), err)
	}
	if got.UserID != 42 || got.Data["cart"] != "open" || len(got.Items) != 2 {
		t.Fatalf("%s: round trip mismatch: %+v", s.Name(), got)
	}
	if s.Len() != 1 {
		t.Fatalf("%s: Len = %d, want 1", s.Name(), s.Len())
	}
	if err := s.Delete("s1"); err != nil {
		t.Fatalf("%s: Delete: %v", s.Name(), err)
	}
	if _, err := s.Read("s1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("%s: Read after delete err = %v, want ErrNotFound", s.Name(), err)
	}
	if err := s.Delete("s1"); err != nil {
		t.Fatalf("%s: double delete should be a no-op, got %v", s.Name(), err)
	}
	if err := s.Write(nil); err == nil {
		t.Fatalf("%s: Write(nil) should error", s.Name())
	}
	if err := s.Write(&Session{}); err == nil {
		t.Fatalf("%s: Write without ID should error", s.Name())
	}
}

func TestFastSBasics(t *testing.T) { testStoreBasics(t, NewFastS()) }
func TestSSMBasics(t *testing.T)   { testStoreBasics(t, NewSSM(nil, 0)) }

func TestIsolationFromCallerMutation(t *testing.T) {
	for _, s := range []Store{NewFastS(), NewSSM(nil, 0), mustCluster(t, 4, 3, 2, nil, 0)} {
		sess := sampleSession("x")
		if err := s.Write(sess); err != nil {
			t.Fatal(err)
		}
		sess.Data["cart"] = "MUTATED"
		sess.Items[0] = 999
		got, err := s.Read("x")
		if err != nil {
			t.Fatal(err)
		}
		if got.Data["cart"] != "open" || got.Items[0] != 7 {
			t.Fatalf("%s: store aliased caller memory: %+v", s.Name(), got)
		}
		// Mutating the returned copy must not affect the store either.
		got.UserID = -5
		again, _ := s.Read("x")
		if again.UserID != 42 {
			t.Fatalf("%s: Read returned aliased object", s.Name())
		}
	}
}

func TestFastSLoseAll(t *testing.T) {
	f := NewFastS()
	for i := 0; i < 5; i++ {
		_ = f.Write(sampleSession(fmt.Sprintf("s%d", i)))
	}
	if n := f.LoseAll(); n != 5 {
		t.Fatalf("LoseAll = %d, want 5", n)
	}
	if f.Len() != 0 {
		t.Fatalf("Len after LoseAll = %d, want 0", f.Len())
	}
	if !(&FastS{}).SurvivesProcessRestart() == false {
		t.Fatal("FastS must not survive process restart")
	}
}

func TestFastSCorruptModes(t *testing.T) {
	f := NewFastS()
	_ = f.Write(sampleSession("a"))
	if err := f.Corrupt("a", "null"); err != nil {
		t.Fatal(err)
	}
	got, _ := f.Read("a")
	if got.Data != nil || got.UserID != 0 {
		t.Fatalf("null corruption not applied: %+v", got)
	}

	_ = f.Write(sampleSession("b"))
	if err := f.Corrupt("b", "invalid"); err != nil {
		t.Fatal(err)
	}
	got, _ = f.Read("b")
	if got.UserID >= 0 {
		t.Fatalf("invalid corruption not applied: %+v", got)
	}

	_ = f.Write(sampleSession("c"))
	if err := f.Corrupt("c", "wrong"); err != nil {
		t.Fatal(err)
	}
	got, _ = f.Read("c")
	if got.UserID != 43 {
		t.Fatalf("wrong corruption not applied: %+v", got)
	}

	if err := f.Corrupt("missing", "null"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt missing err = %v", err)
	}
	if err := f.Corrupt("c", "bogus-mode"); err == nil {
		t.Fatal("unknown mode should error")
	}
}

func TestFastSIDs(t *testing.T) {
	f := NewFastS()
	_ = f.Write(sampleSession("b"))
	_ = f.Write(sampleSession("a"))
	ids := f.IDs()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("IDs = %v, want [a b]", ids)
	}
}

func TestSSMChecksumDiscard(t *testing.T) {
	m := NewSSM(nil, 0)
	_ = m.Write(sampleSession("v"))
	if err := m.CorruptBits("v"); err != nil {
		t.Fatal(err)
	}
	_, err := m.Read("v")
	if !errors.Is(err, ErrCorrupted) {
		t.Fatalf("Read corrupted err = %v, want ErrCorrupted", err)
	}
	// The bad object was discarded: second read is a plain miss.
	if _, err := m.Read("v"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second read err = %v, want ErrNotFound", err)
	}
	if m.Discarded() != 1 {
		t.Fatalf("Discarded = %d, want 1", m.Discarded())
	}
	if err := m.CorruptBits("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("CorruptBits missing err = %v", err)
	}
}

func TestSSMLeaseExpiry(t *testing.T) {
	var now time.Duration
	m := NewSSM(func() time.Duration { return now }, 10*time.Minute)
	_ = m.Write(sampleSession("s"))

	now = 5 * time.Minute
	if _, err := m.Read("s"); err != nil {
		t.Fatalf("read before expiry: %v", err)
	}
	// The read renewed the lease to 15min.
	now = 14 * time.Minute
	if _, err := m.Read("s"); err != nil {
		t.Fatalf("read within renewed lease: %v", err)
	}
	now = 60 * time.Minute
	if _, err := m.Read("s"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read after expiry err = %v, want ErrNotFound", err)
	}
}

func TestSSMReapExpired(t *testing.T) {
	var now time.Duration
	m := NewSSM(func() time.Duration { return now }, time.Minute)
	_ = m.Write(sampleSession("a"))
	_ = m.Write(sampleSession("b"))
	now = 30 * time.Second
	_ = m.Write(sampleSession("c"))
	now = 90 * time.Second
	if n := m.ReapExpired(); n != 2 {
		t.Fatalf("ReapExpired = %d, want 2 (a, b orphaned)", n)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestSSMDown(t *testing.T) {
	m := NewSSM(nil, 0)
	_ = m.Write(sampleSession("s"))
	m.SetDown(true)
	if _, err := m.Read("s"); !errors.Is(err, ErrDown) {
		t.Fatalf("Read while down err = %v, want ErrDown", err)
	}
	if err := m.Write(sampleSession("t")); !errors.Is(err, ErrDown) {
		t.Fatalf("Write while down err = %v, want ErrDown", err)
	}
	if err := m.Delete("s"); !errors.Is(err, ErrDown) {
		t.Fatalf("Delete while down err = %v, want ErrDown", err)
	}
	m.SetDown(false)
	if _, err := m.Read("s"); err != nil {
		t.Fatalf("Read after recovery: %v", err)
	}
}

func TestSessionCloneNil(t *testing.T) {
	var s *Session
	if s.Clone() != nil {
		t.Fatal("Clone of nil should be nil")
	}
	empty := &Session{ID: "e"}
	c := empty.Clone()
	if c.Data != nil || c.Items != nil {
		t.Fatalf("Clone invented fields: %+v", c)
	}
}

// Property: marshal/unmarshal round trip preserves the session exactly.
func TestPropertySSMRoundTrip(t *testing.T) {
	f := func(userID int64, keys []string, vals []string, items []int64) bool {
		s := &Session{ID: "rt", UserID: userID, Data: map[string]string{}, Items: items}
		for i, k := range keys {
			v := ""
			if i < len(vals) {
				v = vals[i]
			}
			s.Data[k] = v
		}
		m := NewSSM(nil, 0)
		if err := m.Write(s); err != nil {
			return false
		}
		got, err := m.Read("rt")
		if err != nil {
			return false
		}
		if got.UserID != s.UserID || len(got.Data) != len(s.Data) || len(got.Items) != len(s.Items) {
			return false
		}
		for k, v := range s.Data {
			if got.Data[k] != v {
				return false
			}
		}
		for i := range s.Items {
			if got.Items[i] != s.Items[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	for _, s := range []Store{NewFastS(), NewSSM(nil, 0), mustCluster(t, 4, 3, 2, nil, 0)} {
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				id := fmt.Sprintf("sess-%d", w)
				for i := 0; i < 100; i++ {
					_ = s.Write(&Session{ID: id, UserID: int64(i)})
					if _, err := s.Read(id); err != nil {
						t.Errorf("%s: concurrent read: %v", s.Name(), err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if s.Len() != 8 {
			t.Fatalf("%s: Len = %d, want 8", s.Name(), s.Len())
		}
	}
}
