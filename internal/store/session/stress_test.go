package session

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stressStore hammers a store with concurrent mixed operations; run under
// -race this is the concurrency-safety net for the striped FastS and the
// brick cluster. extra, when non-nil, runs interleaved maintenance work
// (lease GC, brick crash/restart) from its own goroutine.
func stressStore(t *testing.T, s Store, extra func(stop <-chan struct{})) {
	t.Helper()
	const workers = 16
	const opsPerWorker = 300
	stop := make(chan struct{})
	var maintenance sync.WaitGroup
	if extra != nil {
		maintenance.Add(1)
		go func() {
			defer maintenance.Done()
			extra(stop)
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				id := fmt.Sprintf("sess-%d-%d", w, i%20)
				switch i % 5 {
				case 0, 1:
					if err := s.Write(&Session{ID: id, UserID: int64(i + 1), Data: map[string]string{"k": "v"}}); err != nil && !errors.Is(err, ErrDown) {
						t.Errorf("%s: write: %v", s.Name(), err)
						return
					}
				case 2, 3:
					if _, err := s.Read(id); err != nil &&
						!errors.Is(err, ErrNotFound) && !errors.Is(err, ErrDown) && !errors.Is(err, ErrCorrupted) {
						t.Errorf("%s: read: %v", s.Name(), err)
						return
					}
					s.Len()
				default:
					if err := s.Delete(id); err != nil && !errors.Is(err, ErrDown) {
						t.Errorf("%s: delete: %v", s.Name(), err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	maintenance.Wait()
}

func TestStressStripedFastS(t *testing.T) {
	stressStore(t, NewFastS(), nil)
}

func TestStressSSM(t *testing.T) {
	var clock int64
	now := func() time.Duration { return time.Duration(atomic.AddInt64(&clock, 1)) }
	m := NewSSM(now, time.Hour)
	stressStore(t, m, func(stop <-chan struct{}) {
		for {
			select {
			case <-stop:
				return
			default:
				m.ReapExpired()
			}
		}
	})
}

func TestStressSSMClusterWithBrickChaos(t *testing.T) {
	var clock int64
	now := func() time.Duration { return time.Duration(atomic.AddInt64(&clock, 1)) }
	c, err := NewSSMCluster(ClusterConfig{Shards: 4, Replicas: 3, WriteQuorum: 2, Now: now, LeaseTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// Maintenance goroutine: lease GC plus a rolling single-brick
	// crash/restart cycle. At most one brick is ever down, so the W=2
	// quorum stays reachable throughout.
	stressStore(t, c, func(stop <-chan struct{}) {
		bricks := c.Bricks()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.ReapExpired()
			b := bricks[i%len(bricks)]
			i++
			b.Crash()
			if _, err := c.RestartBrick(b.Name()); err != nil {
				t.Errorf("restart %s: %v", b.Name(), err)
				return
			}
		}
	})
	if len(c.DeadBricks()) != 0 {
		t.Fatalf("bricks left dead: %v", c.DeadBricks())
	}
}
