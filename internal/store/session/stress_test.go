package session

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stressStore hammers a store with concurrent mixed operations; run under
// -race this is the concurrency-safety net for the striped FastS and the
// brick cluster. extra, when non-nil, runs interleaved maintenance work
// (lease GC, brick crash/restart) from its own goroutine.
func stressStore(t *testing.T, s Store, extra func(stop <-chan struct{})) {
	t.Helper()
	const workers = 16
	const opsPerWorker = 300
	stop := make(chan struct{})
	var maintenance sync.WaitGroup
	if extra != nil {
		maintenance.Add(1)
		go func() {
			defer maintenance.Done()
			extra(stop)
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				id := fmt.Sprintf("sess-%d-%d", w, i%20)
				switch i % 5 {
				case 0, 1:
					if err := s.Write(&Session{ID: id, UserID: int64(i + 1), Data: map[string]string{"k": "v"}}); err != nil && !errors.Is(err, ErrDown) {
						t.Errorf("%s: write: %v", s.Name(), err)
						return
					}
				case 2, 3:
					if _, err := s.Read(id); err != nil &&
						!errors.Is(err, ErrNotFound) && !errors.Is(err, ErrDown) && !errors.Is(err, ErrCorrupted) {
						t.Errorf("%s: read: %v", s.Name(), err)
						return
					}
					s.Len()
				default:
					if err := s.Delete(id); err != nil && !errors.Is(err, ErrDown) {
						t.Errorf("%s: delete: %v", s.Name(), err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	maintenance.Wait()
}

func TestStressStripedFastS(t *testing.T) {
	stressStore(t, NewFastS(), nil)
}

func TestStressSSM(t *testing.T) {
	var clock int64
	now := func() time.Duration { return time.Duration(atomic.AddInt64(&clock, 1)) }
	m := NewSSM(now, time.Hour)
	stressStore(t, m, func(stop <-chan struct{}) {
		for {
			select {
			case <-stop:
				return
			default:
				m.ReapExpired()
			}
		}
	})
}

func TestStressSSMClusterWithBrickChaos(t *testing.T) {
	var clock int64
	now := func() time.Duration { return time.Duration(atomic.AddInt64(&clock, 1)) }
	c, err := NewSSMCluster(ClusterConfig{Shards: 4, Replicas: 3, WriteQuorum: 2, Now: now, LeaseTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// Maintenance goroutine: lease GC plus a rolling single-brick
	// crash/restart cycle. At most one brick is ever down, so the W=2
	// quorum stays reachable throughout.
	stressStore(t, c, func(stop <-chan struct{}) {
		bricks := c.Bricks()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.ReapExpired()
			b := bricks[i%len(bricks)]
			i++
			b.Crash()
			if _, err := c.RestartBrick(b.Name()); err != nil {
				t.Errorf("restart %s: %v", b.Name(), err)
				return
			}
		}
	})
	if len(c.DeadBricks()) != 0 {
		t.Fatalf("bricks left dead: %v", c.DeadBricks())
	}
}

func TestStressSSMClusterWithElasticChaos(t *testing.T) {
	var clock int64
	now := func() time.Duration { return time.Duration(atomic.AddInt64(&clock, 1)) }
	c, err := NewSSMCluster(ClusterConfig{Shards: 4, Replicas: 3, WriteQuorum: 2, Now: now, LeaseTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// Maintenance goroutine: a rolling grow/shrink cycle — add a shard,
	// drain, remove it again — with lease GC and a single-brick
	// crash/restart thrown mid-migration. Workers hammer the store
	// throughout; under -race this is the elasticity concurrency net.
	stressStore(t, c, func(stop <-chan struct{}) {
		stopped := func() bool {
			select {
			case <-stop:
				return true
			default:
				return false
			}
		}
		// A competing migrator pump, like a second server instance driving
		// the same cluster: MigrateStep is single-flighted, so concurrent
		// steps must never complete someone else's ring change.
		var pump sync.WaitGroup
		pump.Add(1)
		go func() {
			defer pump.Done()
			for !stopped() {
				c.MigrateStep(32)
			}
		}()
		defer pump.Wait()
		for i := 0; !stopped(); i++ {
			c.ReapExpired()
			shard, err := c.AddShard()
			if err != nil {
				t.Errorf("AddShard: %v", err)
				return
			}
			// Crash one pre-existing brick mid-migration, then restart it,
			// so re-replication interleaves with the drain.
			victim := c.Bricks()[i%(4*3)]
			victim.Crash()
			_, _ = c.MigrateStep(64)
			if _, err := c.RestartBrick(victim.Name()); err != nil {
				t.Errorf("restart %s: %v", victim.Name(), err)
				return
			}
			for done := false; !done && !stopped(); {
				_, done = c.MigrateStep(256)
			}
			if stopped() {
				return
			}
			if err := c.RemoveShard(shard); err != nil {
				t.Errorf("RemoveShard(%d): %v", shard, err)
				return
			}
			for done := false; !done && !stopped(); {
				_, done = c.MigrateStep(256)
			}
		}
	})
	if len(c.DeadBricks()) != 0 {
		t.Fatalf("bricks left dead: %v", c.DeadBricks())
	}
	// Whatever state the chaos ended in, every surviving entry must sit
	// on (or be en route to) a live shard and stay readable.
	for _, id := range c.SessionIDs() {
		if _, err := c.Read(id); err != nil && !errors.Is(err, ErrNotFound) {
			t.Fatalf("read %s after chaos: %v", id, err)
		}
	}
}
