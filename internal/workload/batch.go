package workload

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Batcher is the front-layer micro-batching lane: concurrently-arriving
// read-only invocations coalesce, per session shard, into one store pass
// executed back-to-back on a single goroutine (lock combining). Under
// goroutine oversubscription this converts a thundering herd of
// shared-lock acquisitions and scheduler wakeups into a tight sequential
// drain, which is where the multi-core throughput win comes from.
//
// The lane adds no waiting window: the first arrival on an idle shard
// becomes the combiner and executes immediately, so an unloaded server
// sees zero added latency. Later arrivals park and are drained by the
// combiner in order. Added latency is bounded by MaxBatch: a shard never
// holds more than MaxBatch parked requests — an arrival finding the
// queue full bypasses the lane and executes itself — so a parked request
// waits behind at most MaxBatch executions.
//
// Only idempotent read-only operations should be routed through Do;
// writes (and anything the caller wants isolated) go straight to the
// executor. The caller decides — the Batcher does not inspect ops.
type Batcher struct {
	// Exec runs one invocation (e.g. ebid.App.Execute).
	Exec func(ctx context.Context, call *core.Call) (string, error)
	// MaxBatch caps parked requests per shard (default 8).
	MaxBatch int

	shards [batchShards]batchShard

	// stats
	batched  atomic.Int64 // requests drained by a combiner on another goroutine
	bypassed atomic.Int64 // requests that found a full queue and self-executed
	direct   atomic.Int64 // combiner-lane leaders (no added latency)
}

const batchShards = 32

type batchShard struct {
	mu        sync.Mutex
	queue     []*batchReq
	combining bool
	_         [24]byte // keep neighboring shards off one cache line
}

// batchReq is a parked invocation. Pooled; the done channel (capacity 1)
// is allocated once per object and reused across requests.
type batchReq struct {
	ctx  context.Context
	call *core.Call
	body string
	err  error
	done chan struct{}
}

var batchReqPool = sync.Pool{
	New: func() any { return &batchReq{done: make(chan struct{}, 1)} },
}

// NewBatcher builds a batching lane over the given executor.
func NewBatcher(exec func(ctx context.Context, call *core.Call) (string, error), maxBatch int) *Batcher {
	if maxBatch <= 0 {
		maxBatch = 8
	}
	return &Batcher{Exec: exec, MaxBatch: maxBatch}
}

// batchHash shards by session id (FNV-1a) so one session's requests stay
// ordered through the lane.
func batchHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Do executes the call through the batching lane.
func (b *Batcher) Do(ctx context.Context, call *core.Call) (string, error) {
	s := &b.shards[batchHash(call.SessionID)%batchShards]
	s.mu.Lock()
	if s.combining {
		if len(s.queue) >= b.MaxBatch {
			// Queue full: bypass the lane so added latency stays bounded.
			s.mu.Unlock()
			b.bypassed.Add(1)
			return b.Exec(ctx, call)
		}
		req := batchReqPool.Get().(*batchReq)
		req.ctx, req.call = ctx, call
		s.queue = append(s.queue, req)
		s.mu.Unlock()
		<-req.done
		body, err := req.body, req.err
		req.ctx, req.call, req.body, req.err = nil, nil, "", nil
		batchReqPool.Put(req)
		b.batched.Add(1)
		return body, err
	}
	s.combining = true
	s.mu.Unlock()
	b.direct.Add(1)

	// Combiner: execute our own request, then drain whatever piled up
	// behind us — one goroutine, back-to-back store passes.
	body, err := b.Exec(ctx, call)
	for {
		s.mu.Lock()
		if len(s.queue) == 0 {
			s.combining = false
			s.mu.Unlock()
			return body, err
		}
		batch := s.queue
		s.queue = nil
		s.mu.Unlock()
		for _, r := range batch {
			r.body, r.err = b.Exec(r.ctx, r.call)
			r.done <- struct{}{}
		}
	}
}

// Stats reports lane traffic: leaders (no added latency), drained
// followers, and full-queue bypasses.
func (b *Batcher) Stats() (direct, batched, bypassed int64) {
	return b.direct.Load(), b.batched.Load(), b.bypassed.Load()
}
