package workload

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/ebid"
	"repro/internal/metrics"
)

// phase is where a client is in its session lifecycle.
type phase int

const (
	phaseStart    phase = iota // next op: Home
	phaseLogin                 // next op: Authenticate or RegisterNewUser
	phaseBrowsing              // logged in, free choice
	phaseFlow                  // mid two-step flow; pendingOp is the second step
)

// client is one emulated user: a Markov chain walker with think times.
type client struct {
	e       *Emulator
	id      int
	phase   phase
	quick   bool // this session is a quick login-check-logout visit
	quickN  int  // ops completed within the quick visit
	pending string

	sessionSeq int
	inFlight   bool

	action []metrics.Op
	failed bool
}

func newClient(e *Emulator, id int) *client {
	return &client{e: e, id: id, phase: phaseStart}
}

func (c *client) sessionID() string {
	return fmt.Sprintf("c%d-s%d", c.id, c.sessionSeq)
}

// step chooses and issues the next operation.
func (c *client) step() {
	if c.e.stopped || c.inFlight {
		return
	}
	if c.e.draining && c.phase == phaseStart {
		// Session boundary during a drain: this user has left the site.
		c.closeAction(false)
		return
	}
	op, args := c.nextOp()
	c.issue(op, args)
}

// nextOp implements the Markov chain. Weights are tuned so the
// steady-state mix reproduces Table 1 (verified by TestTable1Mix).
func (c *client) nextOp() (string, core.Args) {
	rng := c.e.kernel.Rand()
	switch c.phase {
	case phaseStart:
		c.phase = phaseLogin
		// A fresh visit gets a fresh session id. Rotating here — not when
		// the previous session ended — lets the Logout op still carry the
		// id it is logging out, so the server really deletes it.
		c.sessionSeq++
		c.quick = rng.Float64() < c.e.cfg.QuickVisitP
		c.quickN = 0
		return ebid.OpHome, nil
	case phaseLogin:
		c.phase = phaseBrowsing
		if rng.Float64() < 0.13 {
			return ebid.RegisterNewUser, &ebid.OpArgs{Region: c.randRegion()}
		}
		return ebid.Authenticate, &ebid.OpArgs{User: c.randUser()}
	case phaseFlow:
		op := c.pending
		c.pending = ""
		c.phase = phaseBrowsing
		switch op {
		case ebid.CommitBid:
			return op, &ebid.OpArgs{Amount: float64(1 + rng.Intn(500))}
		case ebid.CommitUserFeedback:
			return op, &ebid.OpArgs{Rating: int64(rng.Intn(11) - 5), HasRating: true}
		case ebid.RegisterNewItem:
			return op, &ebid.OpArgs{Category: c.randCategory()}
		default:
			return op, nil
		}
	}

	// phaseBrowsing. Quick visits go straight to AboutMe then Logout.
	if c.quick {
		c.quickN++
		if c.quickN == 1 {
			return ebid.AboutMe, nil
		}
		c.phase = phaseStart
		return ebid.OpLogout, nil
	}

	x := rng.Float64()
	switch {
	case x < 0.13: // session end
		c.phase = phaseStart
		return ebid.OpLogout, nil
	case x < 0.13+0.46: // read-only DB access
		y := rng.Float64()
		switch {
		case y < 0.22:
			return ebid.BrowseCategories, nil
		case y < 0.32:
			return ebid.BrowseRegions, nil
		case y < 0.66:
			return ebid.ViewItem, &ebid.OpArgs{Item: c.randItem()}
		case y < 0.78:
			return ebid.ViewUserInfo, &ebid.OpArgs{User: c.randUser()}
		case y < 0.88:
			return ebid.ViewBidHistory, &ebid.OpArgs{Item: c.randItem()}
		default:
			return ebid.AboutMe, nil
		}
	case x < 0.13+0.46+0.19: // search
		if rng.Float64() < 0.6 {
			return ebid.SearchItemsByCategory, &ebid.OpArgs{Category: c.randCategory()}
		}
		return ebid.SearchItemsByRegion, &ebid.OpArgs{Region: c.randRegion()}
	case x < 0.13+0.46+0.19+0.09: // bid flow
		c.phase = phaseFlow
		c.pending = ebid.CommitBid
		return ebid.MakeBid, &ebid.OpArgs{Item: c.randItem()}
	case x < 0.13+0.46+0.19+0.09+0.04: // buy flow
		c.phase = phaseFlow
		c.pending = ebid.CommitBuyNow
		return ebid.DoBuyNow, &ebid.OpArgs{Item: c.randItem()}
	case x < 0.13+0.46+0.19+0.09+0.04+0.04: // feedback flow
		c.phase = phaseFlow
		c.pending = ebid.CommitUserFeedback
		return ebid.LeaveUserFeedback, &ebid.OpArgs{User: c.randUser()}
	case x < 0.13+0.46+0.19+0.09+0.04+0.04+0.02: // sell flow
		c.phase = phaseFlow
		c.pending = ebid.RegisterNewItem
		return ebid.OpSellForm, nil
	default: // static browsing
		return ebid.OpBrowseMenu, nil
	}
}

func (c *client) randUser() int64     { return 1 + c.e.kernel.Rand().Int63n(c.e.cfg.Users) }
func (c *client) randItem() int64     { return 1 + c.e.kernel.Rand().Int63n(c.e.cfg.Items) }
func (c *client) randCategory() int64 { return 1 + c.e.kernel.Rand().Int63n(c.e.cfg.Categories) }
func (c *client) randRegion() int64   { return 1 + c.e.kernel.Rand().Int63n(c.e.cfg.Regions) }

// issue submits the op to the frontend.
func (c *client) issue(op string, args core.Args) {
	c.inFlight = true
	c.e.issued++
	issued := c.e.kernel.Now()
	sid := c.sessionID()
	req := &Request{
		ClientID:  c.id,
		Op:        op,
		SessionID: sid,
		Args:      args,
		Issued:    issued,
		Ctx:       context.Background(),
	}
	req.Complete = func(resp Response) {
		c.inFlight = false
		c.complete(op, issued, resp)
	}
	c.e.frontend.Submit(req)
}

// complete handles the outcome, performs Taw accounting, and schedules
// the next step after a think time.
func (c *client) complete(op string, issued time.Duration, resp Response) {
	now := c.e.kernel.Now()
	info, _ := ebid.Info(op)
	ok := resp.OK() && !looksFaulty(resp.Body)
	c.action = append(c.action, metrics.Op{
		Start: issued,
		End:   now,
		Name:  op,
		Group: info.Group,
		OK:    ok,
	})
	if !ok {
		c.failed = true
		if c.e.onFailure != nil {
			c.e.onFailure(c.id, op, resp)
		}
		// A failed action aborts any in-progress flow and, on session
		// loss, sends the user back to the login page (where a fresh
		// session id is assigned).
		c.closeAction(true)
		c.pending = ""
		if isSessionLoss(resp.Err) || c.phase == phaseFlow {
			c.phase = phaseStart
		}
		if c.phase == phaseFlow {
			c.phase = phaseBrowsing
		}
	} else {
		if info.CommitPoint || len(c.action) >= c.e.cfg.MaxActionLen && c.phase != phaseFlow {
			c.closeAction(false)
		}
	}
	if c.e.stopped {
		return
	}
	think := c.e.kernel.Exponential(c.e.cfg.ThinkMean, c.e.cfg.ThinkCap)
	c.e.kernel.Schedule(think, c.step)
}

// closeAction finalizes the current action; failed marks it (and all of
// its ops, retroactively) as bad Taw.
func (c *client) closeAction(failed bool) {
	if len(c.action) == 0 {
		c.failed = false
		return
	}
	if c.e.recorder != nil {
		c.e.recorder.Action(c.action, failed || c.failed)
	}
	c.action = nil
	c.failed = false
}

// isSessionLoss classifies errors that mean the session vanished.
func isSessionLoss(err error) bool {
	if err == nil {
		return false
	}
	return strings.Contains(err.Error(), "not logged in")
}

// looksFaulty is the client-side keyword scan: received HTML is searched
// for keywords indicative of failure.
func looksFaulty(body string) bool {
	for _, kw := range []string{"exception", "failed", "error"} {
		if strings.Contains(strings.ToLower(body), kw) {
			return true
		}
	}
	return false
}

// Errors recognized across package boundaries.
var errKilled = errors.New("workload: request killed by recovery")

// KilledError returns the sentinel used by frontends to fail requests
// whose shepherds were destroyed by a microreboot.
func KilledError() error { return errKilled }

var _ = core.ErrHang // keep the core dependency explicit
