// Package workload implements the paper's client emulator: human users
// modeled by a Markov chain over the 25 end-user operations of eBid, with
// independent exponentially distributed think times (mean 7 s, capped at
// 70 s, as in TPC-W) between successive "URL clicks". Transition
// probabilities are chosen so the steady-state operation mix reproduces
// Table 1, which in turn mimics the real workload of a major Internet
// auction site.
//
// The emulator also performs the action-weighted throughput accounting of
// Section 4: a session begins at login and ends at logout or abandonment;
// ops group into actions that succeed or fail atomically at commit
// points; any failed op retroactively fails its whole action.
package workload

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Request is one HTTP request submitted to a frontend (a node or a load
// balancer). Complete must be invoked exactly once with the outcome.
type Request struct {
	ClientID  int
	Op        string
	SessionID string
	Args      core.Args
	Issued    time.Duration
	// Ctx is the request's root context, threaded down through
	// core.Server.Invoke; nil means context.Background().
	Ctx context.Context
	// Call is the in-application call object; frontends construct it so
	// microreboot kill notifications can be correlated.
	Call *core.Call
	// Complete delivers the outcome back to the emulator.
	Complete func(Response)
}

// Response is the outcome of a request.
type Response struct {
	Body string
	Err  error
	// Retried reports how many transparent 503-retries the frontend
	// performed before this outcome.
	Retried int
}

// OK reports whether the request succeeded.
func (r Response) OK() bool { return r.Err == nil }

// Frontend accepts requests (a single node, or a cluster load balancer).
type Frontend interface {
	Submit(req *Request)
}

// Config parameterizes the emulator.
type Config struct {
	// Clients is the concurrent emulated-user population.
	Clients int
	// ThinkMean and ThinkCap shape think time; defaults: 7 s / 70 s.
	ThinkMean time.Duration
	ThinkCap  time.Duration
	// Dataset cardinalities for argument synthesis.
	Users      int64
	Items      int64
	Categories int64
	Regions    int64
	// MaxActionLen closes pure-browsing actions after this many ops
	// (default 4), standing in for "the customized summary screen" at
	// the end of a browsing action.
	MaxActionLen int
	// QuickVisitP is the probability a session is a short
	// login-check-logout visit (default 0.2).
	QuickVisitP float64
	// StartStagger spreads client start times uniformly over this window
	// (default: ThinkMean) so load ramps smoothly.
	StartStagger time.Duration
	// ClientIDOffset shifts this emulator's client ids so several
	// emulators can share one frontend (session ids derive from client
	// ids and must stay distinct).
	ClientIDOffset int
}

func (c *Config) fill() {
	if c.ThinkMean == 0 {
		c.ThinkMean = 7 * time.Second
	}
	if c.ThinkCap == 0 {
		c.ThinkCap = 70 * time.Second
	}
	if c.Users == 0 {
		c.Users = 250
	}
	if c.Items == 0 {
		c.Items = 3300
	}
	if c.Categories == 0 {
		c.Categories = 20
	}
	if c.Regions == 0 {
		c.Regions = 62
	}
	if c.MaxActionLen == 0 {
		c.MaxActionLen = 4
	}
	if c.QuickVisitP == 0 {
		c.QuickVisitP = 0.2
	}
	if c.StartStagger == 0 {
		c.StartStagger = c.ThinkMean
	}
}

// FailureListener receives op-level failures (the client-side failure
// detector of Section 4 plugs in here).
type FailureListener func(clientID int, op string, resp Response)

// Emulator drives Config.Clients emulated users against a Frontend on a
// simulation kernel.
type Emulator struct {
	kernel   *sim.Kernel
	frontend Frontend
	recorder *metrics.Recorder
	cfg      Config

	clients []*client

	onFailure FailureListener
	// stats
	issued   int64
	stopped  bool
	draining bool
}

// NewEmulator builds an emulator. recorder may be nil (no Taw accounting).
func NewEmulator(k *sim.Kernel, fe Frontend, rec *metrics.Recorder, cfg Config) *Emulator {
	cfg.fill()
	e := &Emulator{kernel: k, frontend: fe, recorder: rec, cfg: cfg}
	for i := 0; i < cfg.Clients; i++ {
		e.clients = append(e.clients, newClient(e, cfg.ClientIDOffset+i))
	}
	return e
}

// OnFailure installs the failure listener.
func (e *Emulator) OnFailure(l FailureListener) { e.onFailure = l }

// Start schedules all clients; their first ops are staggered.
func (e *Emulator) Start() {
	for _, c := range e.clients {
		c := c
		e.kernel.Schedule(e.kernel.Uniform(0, e.cfg.StartStagger), c.step)
	}
}

// Stop stops issuing new requests (in-flight ones still complete).
func (e *Emulator) Stop() { e.stopped = true }

// Drain retires the population gracefully: each client finishes its
// current session (through its logout, which deletes the stored session)
// and then goes home instead of starting another. Unlike Stop, a drained
// population leaves no abandoned sessions behind for the lease reaper.
func (e *Emulator) Drain() { e.draining = true }

// Issued reports the number of requests issued so far.
func (e *Emulator) Issued() int64 { return e.issued }

// FlushActions closes every client's open action as successful-so-far.
// Call at the end of an experiment so trailing ops are accounted.
func (e *Emulator) FlushActions() {
	for _, c := range e.clients {
		c.closeAction(false)
	}
}
