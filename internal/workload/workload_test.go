package workload

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/ebid"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// instantFrontend completes every request immediately with success, or
// with a scripted error for chosen ops.
type instantFrontend struct {
	k      *sim.Kernel
	failOp string
	err    error
	count  map[string]int
}

func (f *instantFrontend) Submit(req *Request) {
	if f.count == nil {
		f.count = map[string]int{}
	}
	f.count[req.Op]++
	resp := Response{Body: "<html>ok</html>"}
	if f.failOp != "" && req.Op == f.failOp {
		resp = Response{Err: f.err}
	}
	// Completion happens "now" — zero service time.
	f.k.Schedule(0, func() { req.Complete(resp) })
}

func TestTable1Mix(t *testing.T) {
	k := sim.NewKernel(7)
	fe := &instantFrontend{k: k}
	rec := metrics.NewRecorder(time.Second, 8*time.Second)
	em := NewEmulator(k, fe, rec, Config{Clients: 200})
	em.Start()
	k.RunFor(2 * time.Hour) // ~200k ops at 200 clients / 7 s think time
	em.Stop()

	total := 0
	byCat := map[string]int{}
	for op, n := range fe.count {
		info, ok := ebid.Info(op)
		if !ok {
			t.Fatalf("emulator issued unknown op %q", op)
		}
		byCat[info.Category] += n
		total += n
	}
	if total < 50000 {
		t.Fatalf("only %d ops issued; emulator stalled?", total)
	}
	// Table 1 targets.
	want := map[string]float64{
		ebid.CatReadOnlyDB:    0.32,
		ebid.CatSessionInit:   0.23,
		ebid.CatStatic:        0.12,
		ebid.CatSearch:        0.12,
		ebid.CatSessionUpdate: 0.11,
		ebid.CatDBUpdate:      0.10,
	}
	const tolerance = 0.045
	for cat, target := range want {
		got := float64(byCat[cat]) / float64(total)
		if math.Abs(got-target) > tolerance {
			t.Errorf("category %q: mix = %.3f, want %.2f ± %.3f", cat, got, target, tolerance)
		}
		t.Logf("%-45s %5.1f%% (paper: %2.0f%%)", cat, got*100, target*100)
	}
}

func TestThroughputMatchesLittleLaw(t *testing.T) {
	// 500 clients with 7 s mean think time ≈ 71 req/s (Table 5's ~72).
	k := sim.NewKernel(3)
	fe := &instantFrontend{k: k}
	em := NewEmulator(k, fe, nil, Config{Clients: 500})
	em.Start()
	k.RunFor(10 * time.Minute)
	rate := float64(em.Issued()) / (10 * 60)
	if rate < 60 || rate > 85 {
		t.Fatalf("offered load = %.1f req/s, want ~71", rate)
	}
}

func TestActionAccounting(t *testing.T) {
	k := sim.NewKernel(5)
	fe := &instantFrontend{k: k}
	rec := metrics.NewRecorder(time.Second, 8*time.Second)
	em := NewEmulator(k, fe, rec, Config{Clients: 50})
	em.Start()
	k.RunFor(30 * time.Minute)
	em.Stop()
	em.FlushActions()
	if rec.GoodActions() == 0 {
		t.Fatal("no actions recorded")
	}
	if rec.FailedActions() != 0 {
		t.Fatalf("failed actions = %d on a fault-free run", rec.FailedActions())
	}
	opsPerAction := float64(rec.GoodOps()) / float64(rec.GoodActions())
	// The paper's Figure 1 averages ≈3.8 ops/action; accept 2–5.
	if opsPerAction < 2 || opsPerAction > 5 {
		t.Fatalf("ops/action = %.2f, want 2–5", opsPerAction)
	}
	t.Logf("ops/action = %.2f", opsPerAction)
}

func TestFailurePropagation(t *testing.T) {
	k := sim.NewKernel(9)
	fe := &instantFrontend{k: k, failOp: ebid.ViewItem, err: errors.New("injected exception")}
	rec := metrics.NewRecorder(time.Second, 8*time.Second)
	em := NewEmulator(k, fe, rec, Config{Clients: 100})
	var failures int
	em.OnFailure(func(clientID int, op string, resp Response) {
		if op != ebid.ViewItem {
			t.Errorf("failure reported for %s, want ViewItem", op)
		}
		failures++
	})
	em.Start()
	k.RunFor(20 * time.Minute)
	em.Stop()
	em.FlushActions()
	if failures == 0 {
		t.Fatal("no failures reported")
	}
	if rec.FailedActions() == 0 {
		t.Fatal("failed ops did not fail their actions")
	}
	// Retroactive marking means bad ops ≥ failures.
	if rec.BadOps() < int64(failures) {
		t.Fatalf("bad ops %d < failures %d", rec.BadOps(), failures)
	}
}

func TestSessionLossSendsClientToLogin(t *testing.T) {
	k := sim.NewKernel(11)
	fe := &instantFrontend{k: k, failOp: ebid.AboutMe, err: errors.New("ebid: not logged in")}
	em := NewEmulator(k, fe, nil, Config{Clients: 20})
	em.Start()
	k.RunFor(30 * time.Minute)
	em.Stop()
	// After AboutMe failures, clients must restart sessions: Home and
	// Authenticate counts grow well beyond the no-loss baseline.
	if fe.count[ebid.OpHome] == 0 || fe.count[ebid.Authenticate] == 0 {
		t.Fatal("clients never came back to login after session loss")
	}
	if fe.count[ebid.OpHome] < fe.count[ebid.AboutMe]/2 {
		t.Fatalf("Home count %d too low relative to AboutMe failures %d",
			fe.count[ebid.OpHome], fe.count[ebid.AboutMe])
	}
}

func TestKeywordDetector(t *testing.T) {
	for body, faulty := range map[string]bool{
		"<html>ok</html>":                      false,
		"<html>NullPointerException</html>":    true,
		"<html>operation FAILED</html>":        true,
		"<html>Error 500</html>":               true,
		"<html>errorless content... no</html>": true, // substring match, as in the paper's grep
		"<html>item 7: gadget, 3 bids</html>":  false,
	} {
		if got := looksFaulty(body); got != faulty {
			t.Errorf("looksFaulty(%q) = %v, want %v", body, got, faulty)
		}
	}
}

func TestStopHaltsIssuing(t *testing.T) {
	k := sim.NewKernel(2)
	fe := &instantFrontend{k: k}
	em := NewEmulator(k, fe, nil, Config{Clients: 10})
	em.Start()
	k.RunFor(time.Minute)
	em.Stop()
	before := em.Issued()
	k.RunFor(10 * time.Minute)
	if em.Issued() != before {
		t.Fatalf("requests issued after Stop: %d -> %d", before, em.Issued())
	}
}

func TestSessionIDsRotateAtNextVisit(t *testing.T) {
	// Regression: the session id used to rotate when Logout was chosen,
	// so the Logout op carried the NEXT visit's id and the server never
	// deleted the real session (it leaked until lease expiry).
	k := sim.NewKernel(5)
	e := NewEmulator(k, nil, nil, Config{Clients: 0})
	c := newClient(e, 3)
	if op, _ := c.nextOp(); op != ebid.OpHome {
		t.Fatalf("first op = %s, want Home", op)
	}
	visit := c.sessionID()
	// Fast-forward to the end of a quick visit: the next op is Logout.
	c.phase = phaseBrowsing
	c.quick = true
	c.quickN = 1
	if op, _ := c.nextOp(); op != ebid.OpLogout {
		t.Fatalf("op = %s, want Logout", op)
	}
	if got := c.sessionID(); got != visit {
		t.Fatalf("logout would delete %s, want the session it belongs to (%s)", got, visit)
	}
	if op, _ := c.nextOp(); op != ebid.OpHome {
		t.Fatal("next visit did not start at Home")
	}
	if got := c.sessionID(); got == visit {
		t.Fatalf("session id did not rotate for the new visit: %s", got)
	}
}
