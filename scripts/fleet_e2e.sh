#!/usr/bin/env bash
# fleet_e2e.sh — kill-under-load end-to-end gate for the real process fleet.
#
# Starts ebid-proxy fronting 3 ebid-server OS processes, drives the paper
# workload through loadgen, SIGKILLs one backend mid-load, and asserts the
# crash-only contract:
#   * the supervisor respawns the killed backend (restarts >= 1, ready again)
#   * no established session ever sees a plain 5xx (loadgen -fail-established-5xx)
#   * no session is lost by the router (lost_sessions == 0); lapses surface
#     as 401 + re-login, which the client absorbs transparently
#   * the proxy drains the whole fleet cleanly on SIGTERM (exit 0)
#
# Usage: scripts/fleet_e2e.sh [bindir]   (default bindir: ./bin)
set -euo pipefail

BIN=${1:-./bin}
PROXY_PORT=${PROXY_PORT:-18080}
BASE=http://127.0.0.1:$PROXY_PORT
DURATION=${DURATION:-20s}
CLIENTS=${CLIENTS:-20}
VICTIM=node1

for tool in "$BIN/ebid-proxy" "$BIN/ebid-server" "$BIN/loadgen"; do
  [[ -x $tool ]] || { echo "fleet_e2e: missing binary $tool (go build -o $BIN ./cmd/...)" >&2; exit 2; }
done
command -v jq >/dev/null || { echo "fleet_e2e: jq required" >&2; exit 2; }

WALDIR=$(mktemp -d)
PROXY_LOG=$WALDIR/proxy.log
PROXY_PID=
LOADGEN_PID=

cleanup() {
  local rc=$?
  if [[ -n $LOADGEN_PID ]] && kill -0 "$LOADGEN_PID" 2>/dev/null; then
    kill "$LOADGEN_PID" 2>/dev/null || true
  fi
  if [[ -n $PROXY_PID ]] && kill -0 "$PROXY_PID" 2>/dev/null; then
    kill -TERM "$PROXY_PID" 2>/dev/null || true
    wait "$PROXY_PID" 2>/dev/null || true
  fi
  if [[ $rc -ne 0 ]]; then
    echo "--- proxy log tail ---" >&2
    tail -n 40 "$PROXY_LOG" >&2 || true
  fi
  rm -rf "$WALDIR"
  exit $rc
}
trap cleanup EXIT

status() { curl -fsS "$BASE/admin/proxy/status"; }

echo "== starting proxy + 3-backend fleet (WALs in $WALDIR)"
"$BIN/ebid-proxy" \
  -addr "127.0.0.1:$PROXY_PORT" -base-port $((PROXY_PORT + 1)) \
  -backends 3 -policy shed -server-bin "$BIN/ebid-server" \
  -wal-dir "$WALDIR" -drain-timeout 5s \
  -server-flags "-users 100 -items 300" >"$PROXY_LOG" 2>&1 &
PROXY_PID=$!

for i in $(seq 1 60); do
  curl -fsS "$BASE/admin/proxy/ready" >/dev/null 2>&1 && break
  kill -0 "$PROXY_PID" 2>/dev/null || { echo "fleet_e2e: proxy died during startup" >&2; exit 1; }
  [[ $i == 60 ]] && { echo "fleet_e2e: fleet never became ready" >&2; exit 1; }
  sleep 0.5
done
echo "== fleet ready"

echo "== driving load ($CLIENTS clients for $DURATION)"
"$BIN/loadgen" -url "$BASE" -clients "$CLIENTS" -duration "$DURATION" -think 50ms \
  -users 100 -items 300 -fail-established-5xx &
LOADGEN_PID=$!

sleep 5
echo "== SIGKILLing $VICTIM mid-load"
curl -fsS -X POST "$BASE/admin/proxy/kill?backend=$VICTIM" >/dev/null

for i in $(seq 1 60); do
  if status | jq -e --arg v "$VICTIM" \
    '(.supervisor[] | select(.name == $v) | .restarts >= 1 and .ready)
     and ([.router.backends[].healthy] | all)' >/dev/null; then
    break
  fi
  [[ $i == 60 ]] && { echo "fleet_e2e: $VICTIM never respawned" >&2; exit 1; }
  sleep 0.5
done
echo "== $VICTIM respawned and healthy again"

if ! wait "$LOADGEN_PID"; then
  echo "fleet_e2e: loadgen FAILED (established session saw a 5xx)" >&2
  LOADGEN_PID=
  exit 1
fi
LOADGEN_PID=

FINAL=$(status)
echo "$FINAL" | jq '{lost: .router.lost_sessions, spilled: .router.spilled,
                     shed: .router.shed, retried: .router.retried,
                     restarts: [.supervisor[] | {(.name): .restarts}] | add}'
LOST=$(echo "$FINAL" | jq '.router.lost_sessions')
if [[ $LOST != 0 ]]; then
  echo "fleet_e2e: $LOST sessions lost by the router" >&2
  exit 1
fi

echo "== draining fleet"
kill -TERM "$PROXY_PID"
if ! wait "$PROXY_PID"; then
  echo "fleet_e2e: proxy did not exit cleanly" >&2
  PROXY_PID=
  exit 1
fi
PROXY_PID=
echo "fleet_e2e: PASS (zero lost sessions, zero established-session 5xx, $VICTIM respawned under load)"
